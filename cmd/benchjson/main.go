// Command benchjson converts `go test -bench` output read from stdin into
// a stable JSON document, so CI can archive benchmark runs (BENCH_sweep.json)
// and the performance trajectory accumulates in a machine-readable form.
//
// Usage:
//
//	go test -run '^$' -bench Sweep -benchtime 1x -benchmem ./... | benchjson -out BENCH_sweep.json
//	go test -run '^$' -bench 'Sweep|Store' -benchtime 1x -benchmem . | benchjson -append -note "PR 3" -out BENCH_sweep.json
//	benchjson -compare old.json new.json -max-regress 25%
//
// With no -out the JSON is written to stdout. With -append the output file
// becomes a trajectory: a JSON array of runs, to which the parsed run is
// appended (a pre-existing single-run object is wrapped first) — the
// repository's BENCH_sweep.json accumulates one entry per recorded data
// point, a curve instead of a dot. Lines that are not benchmark results
// contribute only to the captured environment header (goos, goarch, pkg,
// cpu); unparseable lines are ignored, so the tool is safe to feed the
// full `go test` output including PASS/ok trailers.
//
// With -compare, benchjson reads nothing from stdin: it loads the two
// trajectories named by its positional arguments, diffs the latest run of
// each per benchmark (ns/op and allocs/op, matching names across machines
// by stripping the -GOMAXPROCS suffix), prints the comparison, and exits
// non-zero if any benchmark regressed by more than -max-regress — the CI
// benchmark-regression gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in the emitted JSON schema.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is one benchmark run in the emitted JSON.
type Document struct {
	Note    string   `json:"note,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default: stdout)")
	appendRun := flag.Bool("append", false, "append the run to the trajectory (JSON array) in -out instead of overwriting")
	note := flag.String("note", "", "free-form label recorded on the run")
	compare := flag.Bool("compare", false, "compare the latest runs of the two trajectory files given as arguments and fail on regression")
	maxRegress := flag.String("max-regress", "25%", "with -compare: maximum allowed ns/op and allocs/op regression (e.g. 25%)")
	flag.Parse()
	if *compare {
		args := flag.Args()
		if len(args) > 2 {
			// Accept flags after the positional files too:
			//   benchjson -compare old.json new.json -max-regress 25%
			if err := flag.CommandLine.Parse(args[2:]); err != nil {
				os.Exit(2)
			}
			args = append(args[:2:2], flag.Args()...)
		}
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two trajectory files (old new)")
			os.Exit(2)
		}
		threshold, err := parsePercent(*maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		failures, err := compareTrajectories(os.Stdout, args[0], args[1], threshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed more than %s\n", failures, *maxRegress)
			os.Exit(1)
		}
		return
	}
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Note = *note
	var v any = doc
	if *appendRun {
		trajectory, err := loadTrajectory(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		v = append(trajectory, *doc)
	}
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadTrajectory reads the existing runs in path: a JSON array of runs, a
// legacy single-run object (wrapped into a one-element trajectory), or
// nothing at all.
func loadTrajectory(path string) ([]Document, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var docs []Document
	if json.Unmarshal(data, &docs) == nil {
		return docs, nil
	}
	var single Document
	if err := json.Unmarshal(data, &single); err != nil {
		return nil, fmt.Errorf("%s is neither a trajectory nor a run: %w", path, err)
	}
	return []Document{single}, nil
}

func parse(r io.Reader) (*Document, error) {
	doc := &Document{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	return doc, sc.Err()
}

// parsePercent parses a threshold like "25%" (or bare "25") into a
// fraction (0.25). Negative thresholds are rejected.
func parsePercent(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid -max-regress %q (want e.g. 25%%)", s)
	}
	return v / 100, nil
}

// baseName strips the -GOMAXPROCS suffix go test appends to benchmark
// names, so runs recorded on machines with different core counts compare.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// latestRun returns the last run of the trajectory in path.
func latestRun(path string) (Document, error) {
	docs, err := loadTrajectory(path)
	if err != nil {
		return Document{}, err
	}
	if len(docs) == 0 {
		return Document{}, fmt.Errorf("%s holds no benchmark runs", path)
	}
	return docs[len(docs)-1], nil
}

// hasMemStats reports whether a run carries -benchmem data: JSON cannot
// distinguish a recorded 0 allocs/op from an absent measurement (both
// omit the field), so a run whose every benchmark reports zero bytes and
// zero allocs is treated as recorded without -benchmem.
func hasMemStats(doc Document) bool {
	for _, r := range doc.Results {
		if r.BytesPerOp > 0 || r.AllocsPerOp > 0 {
			return true
		}
	}
	return false
}

// compareTrajectories diffs the latest run of the new trajectory against
// the latest run of the old one, benchmark by benchmark, writing one line
// per comparison to w. It returns the number of benchmarks whose ns/op or
// allocs/op regressed by more than threshold (a fraction: 0.25 allows up
// to +25%). Benchmarks present on only one side are reported but never
// counted as regressions, so adding or retiring a benchmark cannot break
// the gate; likewise a side recorded without -benchmem disables the
// allocs/op comparison instead of misreading it as all-zero.
func compareTrajectories(w io.Writer, oldPath, newPath string, threshold float64) (failures int, err error) {
	oldRun, err := latestRun(oldPath)
	if err != nil {
		return 0, err
	}
	newRun, err := latestRun(newPath)
	if err != nil {
		return 0, err
	}
	compareAllocs := hasMemStats(oldRun) && hasMemStats(newRun)
	if !compareAllocs {
		fmt.Fprintln(w, "note: a side was recorded without -benchmem; comparing ns/op only")
	}
	oldBy := make(map[string]Result, len(oldRun.Results))
	for _, r := range oldRun.Results {
		oldBy[baseName(r.Name)] = r
	}
	seen := make(map[string]bool, len(newRun.Results))
	for _, nr := range newRun.Results {
		name := baseName(nr.Name)
		seen[name] = true
		or, ok := oldBy[name]
		if !ok {
			// Present only in the new run: warn and skip — a freshly added
			// benchmark has no baseline to regress against, and it must
			// neither crash the gate nor silently count as a pass.
			fmt.Fprintf(w, "warning: %s: new benchmark, no baseline — skipped (%.0f ns/op, %d allocs/op)\n",
				name, nr.NsPerOp, nr.AllocsPerOp)
			continue
		}
		bad := false
		line := name + ":"
		if or.NsPerOp > 0 {
			delta := (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
			line += fmt.Sprintf(" ns/op %.0f -> %.0f (%+.1f%%)", or.NsPerOp, nr.NsPerOp, delta*100)
			if delta > threshold {
				bad = true
			}
		}
		if compareAllocs {
			switch {
			case or.AllocsPerOp > 0:
				delta := float64(nr.AllocsPerOp-or.AllocsPerOp) / float64(or.AllocsPerOp)
				line += fmt.Sprintf(" allocs/op %d -> %d (%+.1f%%)", or.AllocsPerOp, nr.AllocsPerOp, delta*100)
				if delta > threshold {
					bad = true
				}
			case nr.AllocsPerOp > 0:
				// From zero allocations to any is an unbounded regression.
				line += fmt.Sprintf(" allocs/op 0 -> %d", nr.AllocsPerOp)
				bad = true
			}
		}
		if bad {
			failures++
			line += "  REGRESSION"
		} else {
			line += "  ok"
		}
		fmt.Fprintln(w, line)
	}
	for _, or := range oldRun.Results {
		if name := baseName(or.Name); !seen[name] {
			// Present only in the old run: warn and skip — a retired
			// benchmark cannot regress, but its disappearance should be
			// visible in the gate's output, not silent.
			fmt.Fprintf(w, "warning: %s: dropped from the new run — skipped\n", name)
		}
	}
	return failures, nil
}

// parseResult decodes one benchmark line of the form
//
//	BenchmarkName-8  3  123456 ns/op  789 B/op  10 allocs/op
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = f
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = v
			}
		}
	}
	return res, res.NsPerOp > 0
}
