// Command benchjson converts `go test -bench` output read from stdin into
// a stable JSON document, so CI can archive benchmark runs (BENCH_sweep.json)
// and the performance trajectory accumulates in a machine-readable form.
//
// Usage:
//
//	go test -run '^$' -bench Sweep -benchtime 1x -benchmem ./... | benchjson -out BENCH_sweep.json
//	go test -run '^$' -bench 'Sweep|Store' -benchtime 1x -benchmem . | benchjson -append -note "PR 3" -out BENCH_sweep.json
//
// With no -out the JSON is written to stdout. With -append the output file
// becomes a trajectory: a JSON array of runs, to which the parsed run is
// appended (a pre-existing single-run object is wrapped first) — the
// repository's BENCH_sweep.json accumulates one entry per recorded data
// point, a curve instead of a dot. Lines that are not benchmark results
// contribute only to the captured environment header (goos, goarch, pkg,
// cpu); unparseable lines are ignored, so the tool is safe to feed the
// full `go test` output including PASS/ok trailers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in the emitted JSON schema.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is one benchmark run in the emitted JSON.
type Document struct {
	Note    string   `json:"note,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default: stdout)")
	appendRun := flag.Bool("append", false, "append the run to the trajectory (JSON array) in -out instead of overwriting")
	note := flag.String("note", "", "free-form label recorded on the run")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	doc.Note = *note
	var v any = doc
	if *appendRun {
		trajectory, err := loadTrajectory(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		v = append(trajectory, *doc)
	}
	enc, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// loadTrajectory reads the existing runs in path: a JSON array of runs, a
// legacy single-run object (wrapped into a one-element trajectory), or
// nothing at all.
func loadTrajectory(path string) ([]Document, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var docs []Document
	if json.Unmarshal(data, &docs) == nil {
		return docs, nil
	}
	var single Document
	if err := json.Unmarshal(data, &single); err != nil {
		return nil, fmt.Errorf("%s is neither a trajectory nor a run: %w", path, err)
	}
	return []Document{single}, nil
}

func parse(r io.Reader) (*Document, error) {
	doc := &Document{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult decodes one benchmark line of the form
//
//	BenchmarkName-8  3  123456 ns/op  789 B/op  10 allocs/op
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = f
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = v
			}
		}
	}
	return res, res.NsPerOp > 0
}
