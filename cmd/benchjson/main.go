// Command benchjson converts `go test -bench` output read from stdin into
// a stable JSON document, so CI can archive benchmark runs (BENCH_sweep.json)
// and the performance trajectory accumulates in a machine-readable form.
//
// Usage:
//
//	go test -run '^$' -bench Sweep -benchtime 1x -benchmem ./... | benchjson -out BENCH_sweep.json
//
// With no -out the JSON is written to stdout. Lines that are not benchmark
// results contribute only to the captured environment header (goos, goarch,
// pkg, cpu); unparseable lines are ignored, so the tool is safe to feed the
// full `go test` output including PASS/ok trailers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line in the emitted JSON schema.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output file (default: stdout)")
	flag.Parse()
	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Document, error) {
	doc := &Document{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Results = append(doc.Results, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult decodes one benchmark line of the form
//
//	BenchmarkName-8  3  123456 ns/op  789 B/op  10 allocs/op
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val := fields[i]
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			if f, err := strconv.ParseFloat(val, 64); err == nil {
				res.NsPerOp = f
			}
		case "B/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.BytesPerOp = v
			}
		case "allocs/op":
			if v, err := strconv.ParseInt(val, 10, 64); err == nil {
				res.AllocsPerOp = v
			}
		}
	}
	return res, res.NsPerOp > 0
}
