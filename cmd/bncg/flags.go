package main

import (
	"flag"
	"fmt"
	"os"

	bncg "repro"
)

// commonFlags bundles the flag plumbing the compute subcommands share —
// the verdict store, the game-variant selector, the worker pool, NDJSON
// tracing and the metrics/pprof sidecar. Each shared flag is defined here
// exactly once, so a new one (as -variant was) lands on every subcommand
// through one definition and the per-subcommand runners keep only the
// wiring that genuinely differs. A subcommand registers only the groups
// it supports, so its -h output stays honest.
type commonFlags struct {
	storeDir    *string
	variantStr  *string
	workers     *int
	tracePath   *string
	metricsAddr *string
	pprofFlag   *bool
}

// addStore registers -store. The usage string differs per subcommand
// because the store plays a different role in each (warm-start + persist
// for sweeps, backing store for serve, shard for worker).
func (c *commonFlags) addStore(fs *flag.FlagSet, usage string) {
	c.storeDir = fs.String("store", "", usage)
}

// addVariant registers -variant, the game-variant selector shared by
// sweep, critical, serve and worker.
func (c *commonFlags) addVariant(fs *flag.FlagSet) {
	c.variantStr = fs.String("variant", "",
		`game variant: "unilateral", "max" and/or "mul:AGENT=P/Q", comma-joined (default: the paper's game)`)
}

// addWorkers registers -workers (0 = all CPUs).
func (c *commonFlags) addWorkers(fs *flag.FlagSet, usage string) {
	c.workers = fs.Int("workers", 0, usage)
}

// addTrace registers -trace, the NDJSON span output read back with
// `bncg trace`.
func (c *commonFlags) addTrace(fs *flag.FlagSet, usage string) {
	c.tracePath = fs.String("trace", "", usage)
}

// addSidecar registers -metrics-addr and -pprof as a pair; subject names
// the workload in the help text ("sweep", "worker").
func (c *commonFlags) addSidecar(fs *flag.FlagSet, subject string) {
	c.metricsAddr = fs.String("metrics-addr", "", "serve Prometheus /metrics for this "+subject+" on a sidecar listener")
	c.pprofFlag = fs.Bool("pprof", false, "mount /debug/pprof on the -metrics-addr sidecar")
}

// variantSet reports whether -variant was registered and given a value.
func (c *commonFlags) variantSet() bool {
	return c.variantStr != nil && *c.variantStr != ""
}

// variant parses -variant; the zero value is the paper's default game.
func (c *commonFlags) variant() (bncg.GameVariant, error) {
	if !c.variantSet() {
		return bncg.GameVariant{}, nil
	}
	return bncg.ParseVariant(*c.variantStr)
}

// openTracer creates the -trace NDJSON writer, or returns a nil tracer (a
// valid disabled one) when the flag is unset. The returned cleanup is
// safe to defer unconditionally.
func (c *commonFlags) openTracer(source string) (*bncg.Tracer, func(), error) {
	if c.tracePath == nil || *c.tracePath == "" {
		return nil, func() {}, nil
	}
	tracer, err := bncg.CreateTrace(*c.tracePath, source)
	if err != nil {
		return nil, nil, err
	}
	return tracer, func() { _ = tracer.Close() }, nil
}

// openSweepStore opens -store (nil when unset), warm-starts cache from it
// and attaches it as the cache's write-behind sink. The returned cleanup
// detaches the sink and closes the store; safe to defer unconditionally.
func (c *commonFlags) openSweepStore(cache *bncg.SweepCache, tracer *bncg.Tracer, progress bool) (*bncg.VerdictStore, func(), error) {
	if c.storeDir == nil || *c.storeDir == "" {
		return nil, func() {}, nil
	}
	st, err := bncg.OpenStore(*c.storeDir, bncg.StoreOptions{Trace: tracer})
	if err != nil {
		return nil, nil, err
	}
	warmSpan := tracer.Start("warmstart")
	loaded := cache.WarmStart(st)
	warmSpan.End(bncg.TraceAttrs{"records": loaded})
	if loaded > 0 && progress {
		fmt.Fprintf(os.Stderr, "store: warm-started %d verdicts from %s\n", loaded, *c.storeDir)
	}
	cache.Persist(st)
	return st, func() {
		cache.Persist(nil)
		_ = st.Close()
	}, nil
}

// metrics returns a ComputeMetrics bundle when -metrics-addr is set, nil
// otherwise (a nil *ComputeMetrics is a valid disabled bundle everywhere
// it is threaded).
func (c *commonFlags) metrics() *bncg.ComputeMetrics {
	if c.metricsAddr == nil || *c.metricsAddr == "" {
		return nil
	}
	return bncg.NewComputeMetrics()
}

// startSidecar starts the -metrics-addr listener serving metrics, or does
// nothing when the flag is unset — rejecting a dangling -pprof, which
// needs the sidecar to serve it. The returned cleanup is safe to defer
// unconditionally.
func (c *commonFlags) startSidecar(subject string, metrics *bncg.ComputeMetrics) (func(), error) {
	if metrics == nil {
		if c.pprofFlag != nil && *c.pprofFlag {
			return nil, fmt.Errorf("%s: -pprof needs the -metrics-addr sidecar to serve it", subject)
		}
		return func() {}, nil
	}
	sidecar, err := bncg.StartMetricsSidecar(*c.metricsAddr, metrics.Registry, *c.pprofFlag)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", sidecar.Addr())
	return func() { sidecar.Close() }, nil
}

// bindStoreStats wires a store's flush counters onto a metrics bundle;
// both sides are optional.
func bindStoreStats(metrics *bncg.ComputeMetrics, st *bncg.VerdictStore) {
	if metrics == nil || st == nil {
		return
	}
	metrics.BindStoreStats(func() (int64, int64, int64, int) {
		s := st.Stats()
		return s.FlushedBytes, s.FlushFailures, s.DiskBytes, s.Pending
	})
}

// bindCacheStats wires a cache's entry and hit counters onto a metrics
// bundle.
func bindCacheStats(metrics *bncg.ComputeMetrics, cache *bncg.SweepCache) {
	if metrics == nil || cache == nil {
		return
	}
	metrics.BindCacheStats(func() (int, int, int64, int64) {
		s := cache.Stats()
		return s.Verdicts, s.Certificates, s.Hits, s.Misses
	})
}
