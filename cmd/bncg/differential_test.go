package main

// The GameVariant redesign's compatibility anchor: every surface at the
// default variant must reproduce the pre-variant outputs byte for byte.
// The goldens under testdata/goldens were captured with the last
// pre-variant binary; text reports and store dumps are compared whole,
// JSON payloads field by field (the redesign adds schema_version and
// variant keys — deliberately — and must change nothing else).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	bncg "repro"
)

func golden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "goldens", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestGoldenSweepTextByteIdentical: the default-variant sweep text report
// (with the exact critical appendix) is byte-identical to the pre-variant
// golden, with and without an explicit empty -variant.
func TestGoldenSweepTextByteIdentical(t *testing.T) {
	want := golden(t, "sweep_n4_exact.txt")
	for _, args := range [][]string{
		{"sweep", "-n", "4", "-workers", "1", "-exact"},
		{"sweep", "-n", "4", "-workers", "1", "-exact", "-variant", ""},
	} {
		bncg.ResetSharedSweepCache()
		out, err := runCLI(t, "", args...)
		if err != nil {
			t.Fatal(err)
		}
		if out != want {
			t.Fatalf("%v diverged from the pre-variant golden:\n--- got ---\n%s\n--- want ---\n%s", args, out, want)
		}
	}
}

// TestGoldenCriticalTextByteIdentical: the default-variant critical-α
// report is byte-identical to the pre-variant golden.
func TestGoldenCriticalTextByteIdentical(t *testing.T) {
	bncg.ResetSharedSweepCache()
	out, err := runCLI(t, "", "critical", "-n", "5", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "critical_n5.txt"); out != want {
		t.Fatalf("critical diverged from the pre-variant golden:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// assertCompatibleJSON decodes got and want (a pre-variant golden) and
// requires every golden field to round-trip unchanged; fields that are
// new in got must be in the schema-evolution allowlist. This is the
// compatibility contract of SchemaVersion generation 1: additive only.
func assertCompatibleJSON(t *testing.T, got, want string, allowNew ...string) {
	t.Helper()
	var gotM, wantM map[string]any
	if err := json.Unmarshal([]byte(got), &gotM); err != nil {
		t.Fatalf("new payload is not JSON: %v\n%s", err, got)
	}
	if err := json.Unmarshal([]byte(want), &wantM); err != nil {
		t.Fatalf("golden payload is not JSON: %v", err)
	}
	for k, wv := range wantM {
		gv, ok := gotM[k]
		if !ok {
			t.Errorf("field %q disappeared from the payload", k)
			continue
		}
		if !reflect.DeepEqual(gv, wv) {
			t.Errorf("field %q changed:\n got: %v\nwant: %v", k, gv, wv)
		}
	}
	allowed := map[string]bool{"schema_version": true}
	for _, k := range allowNew {
		allowed[k] = true
	}
	var extra []string
	for k := range gotM {
		if _, old := wantM[k]; !old && !allowed[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	if len(extra) > 0 {
		t.Errorf("unexpected new fields %v (schema evolution must be declared here and in sweep.SchemaVersion's history)", extra)
	}
	if sv, ok := gotM["schema_version"].(float64); !ok || int(sv) != bncg.SchemaVersion {
		t.Errorf("schema_version = %v, want %d", gotM["schema_version"], bncg.SchemaVersion)
	}
}

// TestGoldenSweepJSONCompat: the sweep JSON payload keeps every
// pre-variant field byte-compatible and adds only schema_version (the
// variant key is omitted at the default).
func TestGoldenSweepJSONCompat(t *testing.T) {
	bncg.ResetSharedSweepCache()
	out, err := runCLI(t, "", "sweep", "-n", "4", "-workers", "1", "-exact", "-json")
	if err != nil {
		t.Fatal(err)
	}
	assertCompatibleJSON(t, out, golden(t, "sweep_n4_exact.json"))
	if strings.Contains(out, `"variant"`) {
		t.Fatalf("default-variant sweep JSON must omit the variant key:\n%s", out)
	}
}

// TestGoldenCriticalJSONCompat: same contract for the critical payload.
func TestGoldenCriticalJSONCompat(t *testing.T) {
	bncg.ResetSharedSweepCache()
	out, err := runCLI(t, "", "critical", "-n", "4", "-json")
	if err != nil {
		t.Fatal(err)
	}
	assertCompatibleJSON(t, out, golden(t, "critical_n4.json"))
}

// TestGoldenLegacyStoreDump: a store written by the pre-variant binary
// opens under the extended codec and dumps byte-identically — legacy
// frames decode as the default variant and the dump format is unchanged
// for default records.
func TestGoldenLegacyStoreDump(t *testing.T) {
	src := filepath.Join("testdata", "goldens", "store4")
	dir := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, err := runCLI(t, "", "store", "dump", "-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := golden(t, "store4_dump.txt"); out != want {
		t.Fatalf("legacy store dump diverged from the pre-variant golden:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
}

// TestVariantCriticalEndToEndStore: the promoted variants produce
// critical-α tables that survive store persistence — a second run from a
// wiped cache warm-starts from the variant-tagged certificates and
// reproduces the report byte for byte — and their records dump
// variant-tagged without disturbing coexisting default records.
func TestVariantCriticalEndToEndStore(t *testing.T) {
	for _, variant := range []string{"unilateral", "max"} {
		t.Run(variant, func(t *testing.T) {
			dir := t.TempDir()
			bncg.ResetSharedSweepCache()
			out1, err := runCLI(t, "", "critical", "-n", "4", "-variant", variant, "-store", dir)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out1, "variant="+variant) {
				t.Fatalf("critical report does not name its variant:\n%s", out1)
			}
			// A default-variant run into the same store: distinct keys, no
			// conflicts, and a baseline to diff the variant against.
			bncg.ResetSharedSweepCache()
			def, err := runCLI(t, "", "critical", "-n", "4", "-store", dir)
			if err != nil {
				t.Fatal(err)
			}
			if def == out1 {
				t.Fatalf("variant %q reproduced the default-variant thresholds exactly — the descriptor is not reaching the engine:\n%s", variant, out1)
			}
			// Wipe the cache: the third run can only get its certificates
			// back from the store's variant-tagged frames.
			bncg.ResetSharedSweepCache()
			out2, err := runCLI(t, "", "critical", "-n", "4", "-variant", variant, "-store", dir)
			if err != nil {
				t.Fatal(err)
			}
			if out1 != out2 {
				t.Fatalf("variant critical not byte-stable through persistence:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
			}
			dump, err := runCLI(t, "", "store", "dump", "-dir", dir)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(dump, "variant="+variant) {
				t.Fatalf("store dump lost the variant tag:\n%s", dump)
			}
		})
	}
}

// TestVariantServeCritical: /v1/critical serves the promoted variants
// end-to-end — the daemon computes, persists and re-serves variant-tagged
// certificates, stamps responses with schema_version and the variant key,
// and keeps the default-variant response distinct.
func TestVariantServeCritical(t *testing.T) {
	dir := t.TempDir()
	bncg.ResetSharedSweepCache()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-store", dir}, strings.NewReader(""), &out)
	}()
	var base string
	for deadline := time.Now().Add(5 * time.Second); ; {
		s := out.String()
		if i := strings.Index(s, "listening on http://"); i >= 0 {
			base = strings.TrimSpace(s[i+len("listening on "):])
			base = strings.Split(base, "\n")[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never came up:\n%s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	type critical struct {
		SchemaVersion int    `json:"schema_version"`
		Variant       string `json:"variant"`
		Critical      []struct {
			Concept string   `json:"concept"`
			Alphas  []string `json:"alphas"`
		} `json:"critical"`
	}
	responses := map[string]critical{}
	for _, variant := range []string{"", "unilateral", "max"} {
		url := base + "/v1/critical?n=4"
		if variant != "" {
			url += "&variant=" + variant
		}
		code, body := get(url)
		if code != 200 {
			t.Fatalf("critical variant=%q: status %d\n%s", variant, code, body)
		}
		var c critical
		if err := json.Unmarshal([]byte(body), &c); err != nil {
			t.Fatalf("critical variant=%q: %v\n%s", variant, err, body)
		}
		if c.SchemaVersion != bncg.SchemaVersion {
			t.Fatalf("critical variant=%q: schema_version %d", variant, c.SchemaVersion)
		}
		if c.Variant != variant {
			t.Fatalf("critical response stamped variant %q, want %q", c.Variant, variant)
		}
		if len(c.Critical) == 0 {
			t.Fatalf("critical variant=%q: no rows\n%s", variant, body)
		}
		responses[variant] = c
	}
	for _, variant := range []string{"unilateral", "max"} {
		if reflect.DeepEqual(responses[variant].Critical, responses[""].Critical) {
			t.Fatalf("variant %q thresholds equal the default's — the parameter is not reaching the engine", variant)
		}
	}
	if code, body := get(base + "/v1/critical?n=4&variant=bogus"); code != 400 {
		t.Fatalf("bogus variant: status %d\n%s", code, body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}

	// The variant certificates are durable: the store holds extended
	// frames the dump tags, alongside untagged default records.
	dump, err := runCLI(t, "", "store", "dump", "-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{"unilateral", "max"} {
		if !strings.Contains(dump, "variant="+variant) {
			t.Fatalf("daemon did not persist variant=%s certificates:\n%s", variant, dump)
		}
	}
}

// TestVariantFlagErrors: descriptor errors surface at flag-parse time
// with the grammar named, on every subcommand that takes -variant.
func TestVariantFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"sweep", "-n", "4", "-variant", "bogus"},
		{"critical", "-n", "4", "-variant", "bogus"},
		{"serve", "-addr", "127.0.0.1:0", "-variant", "bogus"},
		{"worker", "-dir", t.TempDir(), "-variant", "bogus"},
	} {
		if _, err := runCLI(t, "", args...); err == nil || !strings.Contains(err.Error(), "variant") {
			t.Fatalf("%v: expected a variant parse error, got %v", args, err)
		}
	}
}

// TestWorkerVariantAssertion: worker -variant refuses a fleet whose lease
// table pins a different game.
func TestWorkerVariantAssertion(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, "", "fleet", "-dir", dir, "-n", "4", "-plan-only"); err != nil {
		t.Fatal(err)
	}
	_, err := runCLI(t, "", "worker", "-dir", dir, "-variant", "unilateral")
	if err == nil || !strings.Contains(err.Error(), "does not match the fleet grid") {
		t.Fatalf("worker joined a default-variant fleet claiming unilateral: %v", err)
	}
}
