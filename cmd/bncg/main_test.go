package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	bncg "repro"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(context.Background(), args, strings.NewReader(stdin), &out)
	return out.String(), err
}

func TestList(t *testing.T) {
	out, err := runCLI(t, "", "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1-PS", "F1a", "L2.4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestGenAndCheckPipe(t *testing.T) {
	graphText, err := runCLI(t, "", "gen", "star", "6")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, graphText, "check", "-alpha", "2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "UNSTABLE") {
		t.Fatalf("star should be stable everywhere at α=2:\n%s", out)
	}
	out, err = runCLI(t, graphText, "check", "-alpha", "1/2", "-concept", "BAE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNSTABLE") {
		t.Fatalf("star at α=1/2 should fail BAE:\n%s", out)
	}
}

func TestGenFamilies(t *testing.T) {
	for _, tc := range [][]string{
		{"gen", "clique", "4"},
		{"gen", "path", "5"},
		{"gen", "cycle", "5"},
		{"gen", "dary", "10", "3"},
		{"gen", "stretched", "2", "2"},
		{"gen", "treestar", "1", "7", "30"},
	} {
		out, err := runCLI(t, "", tc...)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if !strings.HasPrefix(out, "n ") {
			t.Fatalf("%v: output not in edge-list format:\n%s", tc, out)
		}
	}
}

func TestCost(t *testing.T) {
	graphText, err := runCLI(t, "", "gen", "star", "5")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, graphText, "cost", "-alpha", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rho: 1.0000") {
		t.Fatalf("star should be optimal at α=3:\n%s", out)
	}
}

func TestPoA(t *testing.T) {
	out, err := runCLI(t, "", "poa", "-n", "6", "-alpha", "4", "-concept", "PS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "worst ρ") || !strings.Contains(out, "witness") {
		t.Fatalf("poa output:\n%s", out)
	}
}

func TestSweepCommand(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "4", "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sweep n=4 source=graphs: 6 graphs", "BSE", "workers=2 cache:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
	// Deterministic report: same grid, different pool size, fresh shared
	// cache state — the table (everything before the cache line) matches.
	out2, err := runCLI(t, "", "sweep", "-n", "4", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	table := func(s string) string { return s[:strings.LastIndex(s, "workers=")] }
	if table(out) != table(out2) {
		t.Fatalf("sweep reports differ across worker counts:\n%s\nvs\n%s", out, out2)
	}
}

func TestSweepCommandTreesAndConcepts(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "7", "-trees", "-alphas", "4", "-concepts", "PS,BGE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep n=7 source=trees: 11 graphs × 1 α × 2 concepts") {
		t.Fatalf("sweep trees output:\n%s", out)
	}
}

func TestExperimentCommand(t *testing.T) {
	out, err := runCLI(t, "", "experiment", "F3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[PASS]") {
		t.Fatalf("experiment output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"gen"},
		{"gen", "star"},
		{"gen", "star", "x"},
		{"gen", "nope", "5"},
		{"check", "-alpha", "zzz"},
		{"check"},
		{"poa", "-alpha", "2", "-concept", "nope"},
		{"experiment"},
		{"experiment", "nope"},
		{"sweep", "-n", "0"},
		{"sweep", "-alphas", "x"},
		{"sweep", "-concepts", "nope"},
	}
	for _, tc := range cases {
		if _, err := runCLI(t, "", tc...); err == nil {
			t.Fatalf("args %v: expected error", tc)
		}
	}
}

func TestSweepRhoAndJSON(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "4", "-rho", "-json", "-alphas", "2", "-concepts", "PS")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		N         int      `json:"n"`
		Source    string   `json:"source"`
		Alphas    []string `json:"alphas"`
		Concepts  []string `json:"concepts"`
		Graphs    int      `json:"graphs"`
		Completed int      `json:"completed"`
		GraphList []string `json:"graph_list"`
		Items     []struct {
			Vector uint16  `json:"vector"`
			Rho    float64 `json:"rho"`
			Done   bool    `json:"done"`
		} `json:"items"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("sweep -json output is not valid JSON: %v\n%s", err, out)
	}
	if res.N != 4 || res.Source != "graphs" || res.Graphs != 6 || res.Completed != 6 {
		t.Fatalf("unexpected sweep JSON header: %+v", res)
	}
	if len(res.Items) != 6 || len(res.GraphList) != 6 {
		t.Fatalf("want 6 items and graphs, got %d/%d", len(res.Items), len(res.GraphList))
	}
	sawRho := false
	for _, it := range res.Items {
		if !it.Done {
			t.Fatalf("completed sweep has undone item: %+v", it)
		}
		if it.Rho > 1 {
			sawRho = true
		}
	}
	if !sawRho {
		t.Fatal("-rho did not populate any ρ > 1")
	}
}

func TestPoAJSON(t *testing.T) {
	out, err := runCLI(t, "", "poa", "-n", "5", "-alpha", "3", "-concept", "PS", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		N          int     `json:"n"`
		Alpha      string  `json:"alpha"`
		Concept    string  `json:"concept"`
		Rho        float64 `json:"rho"`
		Witness    string  `json:"witness"`
		Candidates int     `json:"candidates"`
		Partial    bool    `json:"partial"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("poa -json output is not valid JSON: %v\n%s", err, out)
	}
	if res.N != 5 || res.Alpha != "3" || res.Concept != "PS" || res.Rho < 1 || res.Partial {
		t.Fatalf("unexpected poa JSON: %+v", res)
	}
	if !strings.HasPrefix(res.Witness, "n 5\n") {
		t.Fatalf("witness not in edge-list format: %q", res.Witness)
	}
}

func TestExperimentJSON(t *testing.T) {
	out, err := runCLI(t, "", "experiment", "F3", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		ID      string `json:"id"`
		Title   string `json:"title"`
		AllPass bool   `json:"all_pass"`
		Checks  []struct {
			Name string `json:"name"`
			Pass bool   `json:"pass"`
		} `json:"checks"`
	}
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("experiment -json output is not valid JSON: %v\n%s", err, out)
	}
	if len(reports) != 1 || reports[0].ID != "F3" || !reports[0].AllPass || len(reports[0].Checks) == 0 {
		t.Fatalf("unexpected experiment JSON: %+v", reports)
	}
}

// TestTimeoutInterruptsSweep: an unmeetable global deadline still prints
// the partial report and surfaces an "interrupted" error — the same path a
// SIGINT takes through signal.NotifyContext.
func TestTimeoutInterruptsSweep(t *testing.T) {
	out, err := runCLI(t, "", "-timeout", "1ns", "sweep", "-n", "6")
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	if !strings.Contains(out, "sweep n=6") {
		t.Fatalf("partial report missing:\n%s", out)
	}
	out, err = runCLI(t, "", "-timeout", "1ns", "poa", "-n", "8", "-alpha", "4", "-concept", "PS")
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("poa err = %v, want interrupted", err)
	}
	if !strings.Contains(out, "(partial)") {
		t.Fatalf("poa partial marker missing:\n%s", out)
	}
	if _, err := runCLI(t, "", "-timeout", "1m", "list"); err != nil {
		t.Fatalf("generous timeout broke list: %v", err)
	}
}

func runCLICtx(t *testing.T, ctx context.Context, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(ctx, args, strings.NewReader(stdin), &out)
	return out.String(), err
}

// cacheLine extracts the trailing "workers=… cache: X hits, Y misses"
// counters from a sweep text report.
func cacheLine(t *testing.T, out string) (hits, misses int) {
	t.Helper()
	i := strings.LastIndex(out, "cache: ")
	if i < 0 {
		t.Fatalf("no cache line in output:\n%s", out)
	}
	if _, err := fmt.Sscanf(out[i:], "cache: %d hits, %d misses", &hits, &misses); err != nil {
		t.Fatalf("unparseable cache line %q: %v", out[i:], err)
	}
	return hits, misses
}

// TestSweepStoreRunTwiceByteIdentical: two runs of the same grid against
// the same store — with the in-memory shared cache wiped in between, so
// only the disk can help — produce byte-identical reports, and the second
// run is served entirely (≥ 90% required, 100% delivered) from persisted
// verdicts.
func TestSweepStoreRunTwiceByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"sweep", "-n", "4", "-store", dir}
	bncg.ResetSharedSweepCache()
	out1, err := runCLI(t, "", args...)
	if err != nil {
		t.Fatal(err)
	}
	bncg.ResetSharedSweepCache()
	out2, err := runCLI(t, "", args...)
	if err != nil {
		t.Fatal(err)
	}
	table := func(s string) string { return s[:strings.LastIndex(s, "workers=")] }
	if table(out1) != table(out2) {
		t.Fatalf("store-backed reruns differ:\n%s\nvs\n%s", out1, out2)
	}
	hits1, misses1 := cacheLine(t, out1)
	hits2, misses2 := cacheLine(t, out2)
	if hits1 != 0 || misses1 == 0 {
		t.Fatalf("first run against an empty store: %d hits, %d misses", hits1, misses1)
	}
	if misses2 != 0 || hits2 != hits1+misses1 {
		t.Fatalf("second run not fully served from the store: %d hits, %d misses", hits2, misses2)
	}
}

// TestSweepResume: an interrupted store-backed sweep leaves a checkpoint;
// `sweep -store … -resume` (fresh shared cache, grid restored from the
// checkpoint) completes to the byte-identical report of an uninterrupted
// run, and a completed sweep clears its checkpoint.
func TestSweepResume(t *testing.T) {
	dir := t.TempDir()
	bncg.ResetSharedSweepCache()
	// Bound the first run so tightly it cannot finish the n=5 grid.
	_, err := runCLICtx(t, context.Background(), "",
		"-timeout", "40ms", "sweep", "-n", "5", "-concepts", "all", "-store", dir)
	if err == nil {
		t.Skip("grid finished inside the timeout; host too fast for an interrupt test")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("want an interrupted error, got: %v", err)
	}

	bncg.ResetSharedSweepCache()
	resumed, err := runCLI(t, "", "sweep", "-store", dir, "-resume")
	if err != nil {
		t.Fatal(err)
	}
	bncg.ResetSharedSweepCache()
	fresh, err := runCLI(t, "", "sweep", "-n", "5", "-concepts", "all")
	if err != nil {
		t.Fatal(err)
	}
	table := func(s string) string { return s[:strings.LastIndex(s, "workers=")] }
	if table(resumed) != table(fresh) {
		t.Fatalf("resumed report differs from an uninterrupted run:\n%s\nvs\n%s", resumed, fresh)
	}
	// Completion cleared the checkpoint.
	if _, err := runCLI(t, "", "sweep", "-store", dir, "-resume"); err == nil ||
		!strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("checkpoint not cleared after completion: %v", err)
	}
}

// TestSweepResumeFromCheckpoint pins resume semantics without racing a
// timer: a store is primed with a completed two-α sweep, then a
// checkpoint describing a three-α grid is planted — exactly the state an
// interrupt during the third row leaves behind. -resume must restore the
// checkpointed grid (ignoring flags), reuse every persisted verdict, and
// match an uninterrupted three-α run byte for byte.
func TestSweepResumeFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	bncg.ResetSharedSweepCache()
	if _, err := runCLI(t, "", "sweep", "-n", "5", "-alphas", "1,2", "-store", dir); err != nil {
		t.Fatal(err)
	}
	st, err := bncg.OpenStore(dir, bncg.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	grid := bncg.SweepOptions{
		N:        5,
		Alphas:   []bncg.Alpha{bncg.AlphaInt(1), bncg.AlphaInt(2), bncg.AlphaInt(3)},
		Concepts: bncg.Concepts(),
	}
	if err := st.SaveCheckpoint(bncg.NewSweepCheckpoint(grid, 63, 42)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	bncg.ResetSharedSweepCache()
	resumed, err := runCLI(t, "", "sweep", "-store", dir, "-resume", "-n", "99")
	if err != nil {
		t.Fatal(err)
	}
	bncg.ResetSharedSweepCache()
	fresh, err := runCLI(t, "", "sweep", "-n", "5", "-alphas", "1,2,3")
	if err != nil {
		t.Fatal(err)
	}
	table := func(s string) string { return s[:strings.LastIndex(s, "workers=")] }
	if table(resumed) != table(fresh) {
		t.Fatalf("resumed report differs:\n%s\nvs\n%s", resumed, fresh)
	}
	// Two of the three α rows were persisted: the resumed run must have
	// been served ≥ 2/3 from the store.
	hits, misses := cacheLine(t, resumed)
	if hits < 2*misses {
		t.Fatalf("resume reused too little: %d hits, %d misses", hits, misses)
	}
}

func TestSweepResumeFlagErrors(t *testing.T) {
	if _, err := runCLI(t, "", "sweep", "-resume"); err == nil ||
		!strings.Contains(err.Error(), "-resume requires -store") {
		t.Fatalf("resume without store: %v", err)
	}
	if _, err := runCLI(t, "", "sweep", "-store", t.TempDir(), "-resume"); err == nil ||
		!strings.Contains(err.Error(), "nothing to resume") {
		t.Fatalf("resume without checkpoint: %v", err)
	}
}

// TestStoreCommand: stats and compact verbs over a store populated by a
// sweep.
func TestStoreCommand(t *testing.T) {
	dir := t.TempDir()
	bncg.ResetSharedSweepCache()
	if _, err := runCLI(t, "", "sweep", "-n", "4", "-alphas", "1,2", "-concepts", "PS,BGE", "-store", dir); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "", "store", "stats", "-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Records      int   `json:"records"`
		Verdicts     int   `json:"verdict_records"`
		Certificates int   `json:"certificate_records"`
		Segments     int   `json:"segments"`
		Bytes        int64 `json:"disk_bytes"`
	}
	if err := json.Unmarshal([]byte(out), &stats); err != nil {
		t.Fatalf("stats output: %v\n%s", err, out)
	}
	// The certificate engine persists one record per (class, concept) —
	// 6 classes × 2 concepts — regardless of the two-point α grid.
	if stats.Records != 6*2 || stats.Certificates != 6*2 || stats.Verdicts != 0 ||
		stats.Segments == 0 || stats.Bytes == 0 {
		t.Fatalf("unexpected stats: %+v", stats)
	}
	out, err = runCLI(t, "", "store", "compact", "-dir", dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "compacted") {
		t.Fatalf("compact output:\n%s", out)
	}
	if _, err := runCLI(t, "", "store", "frobnicate", "-dir", dir); err == nil {
		t.Fatal("unknown store verb accepted")
	}
	if _, err := runCLI(t, "", "store", "stats"); err == nil {
		t.Fatal("store stats without -dir accepted")
	}
}

// syncWriter makes a bytes.Buffer safe to share between the serve
// goroutine and the test's polling reads.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeCommand: end to end through the daemon loop — boot `bncg
// serve` on an ephemeral port with a store, stream one NDJSON sweep and
// read /healthz over real HTTP, then SIGnal shutdown and expect a clean
// (nil-error) exit.
func TestServeCommand(t *testing.T) {
	dir := t.TempDir()
	bncg.ResetSharedSweepCache()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-store", dir}, strings.NewReader(""), &out)
	}()
	var base string
	for deadline := time.Now().Add(5 * time.Second); ; {
		s := out.String()
		if i := strings.Index(s, "listening on http://"); i >= 0 {
			base = strings.TrimSpace(s[i+len("listening on "):])
			base = strings.Split(base, "\n")[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never came up:\n%s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/v1/sweep?n=4&alphas=1,2&concepts=PS")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"type":"summary"`) {
		t.Fatalf("sweep over HTTP: status %d\n%s", resp.StatusCode, body)
	}
	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"status": "ok"`) || !strings.Contains(string(body), `"store"`) {
		t.Fatalf("healthz:\n%s", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited non-zero: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("no shutdown notice:\n%s", out.String())
	}
	// The store was flushed and unlocked on the way out: the verdicts the
	// HTTP sweep computed are durable.
	st, err := bncg.OpenStore(dir, bncg.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() == 0 {
		t.Fatal("daemon persisted no verdicts")
	}
}

// TestSweepStoreForeignCheckpointGuard: a store holding the checkpoint of
// an interrupted grid refuses a different grid without -resume, so one
// sweep cannot clobber another's resume state; the same grid is allowed
// (its completion legitimately clears the checkpoint).
func TestSweepStoreForeignCheckpointGuard(t *testing.T) {
	dir := t.TempDir()
	st, err := bncg.OpenStore(dir, bncg.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	grid := bncg.SweepOptions{
		N:        6,
		Alphas:   []bncg.Alpha{bncg.AlphaInt(1)},
		Concepts: bncg.Concepts(),
	}
	if err := st.SaveCheckpoint(bncg.NewSweepCheckpoint(grid, 112, 10)); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = runCLI(t, "", "sweep", "-n", "4", "-store", dir)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("foreign grid ran over an interrupted checkpoint: %v", err)
	}
	// The identical grid may run without -resume and clears the
	// checkpoint on completion — but n=6 is slow, so assert only the
	// cheap half: after the guard error the checkpoint is untouched.
	st, err = bncg.OpenStore(dir, bncg.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var cp bncg.SweepCheckpoint
	if ok, err := st.LoadCheckpoint(&cp); err != nil || !ok || cp.N != 6 {
		t.Fatalf("guard damaged the checkpoint: %v %v %+v", ok, err, cp)
	}
}

// TestCriticalCommandByteStable: `bncg critical` run twice (with the
// shared cache wiped in between, so the second run re-certifies from
// scratch) produces byte-identical output, and its thresholds agree with
// per-α sweep verdicts on every side of each breakpoint.
func TestCriticalCommandByteStable(t *testing.T) {
	bncg.ResetSharedSweepCache()
	out1, err := runCLI(t, "", "critical", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	bncg.ResetSharedSweepCache()
	out2, err := runCLI(t, "", "critical", "-n", "4", "-workers", "3")
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 {
		t.Fatalf("critical runs differ:\n%s\nvs\n%s", out1, out2)
	}
	if !strings.Contains(out1, "breakpoints") || !strings.Contains(out1, "stable classes") {
		t.Fatalf("critical output malformed:\n%s", out1)
	}

	// JSON form carries the exact rational thresholds.
	bncg.ResetSharedSweepCache()
	jout, err := runCLI(t, "", "critical", "-n", "4", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		N        int    `json:"n"`
		Source   string `json:"source"`
		Classes  int    `json:"classes"`
		Critical []struct {
			Concept string   `json:"concept"`
			Alphas  []string `json:"alphas"`
		} `json:"critical"`
	}
	if err := json.Unmarshal([]byte(jout), &res); err != nil {
		t.Fatalf("critical -json output: %v\n%s", err, jout)
	}
	if res.N != 4 || res.Classes != 6 || len(res.Critical) != 9 {
		t.Fatalf("unexpected critical JSON: %+v", res)
	}

	// Exactness: the RE row reports the clique threshold α = 1; the sweep
	// verdict counts must differ across it and match on it.
	reRow := res.Critical[0]
	if reRow.Concept != "RE" || len(reRow.Alphas) == 0 || reRow.Alphas[0] != "1" {
		t.Fatalf("RE critical row misses the α=1 threshold: %+v", reRow)
	}
	sweepOut, err := runCLI(t, "", "sweep", "-n", "4", "-alphas", "1/2,1,3/2", "-concepts", "RE")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"     1/2      6", "       1      6", "     3/2      3"} {
		if !strings.Contains(sweepOut, want) {
			t.Fatalf("sweep verdicts around the RE threshold missing %q:\n%s", want, sweepOut)
		}
	}
}

// TestSweepExactFlag: `sweep -exact` appends the critical report to the
// standard table, byte-stable across worker counts.
func TestSweepExactFlag(t *testing.T) {
	bncg.ResetSharedSweepCache()
	out1, err := runCLI(t, "", "sweep", "-n", "4", "-exact", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	bncg.ResetSharedSweepCache()
	out2, err := runCLI(t, "", "sweep", "-n", "4", "-exact", "-workers", "4")
	if err != nil {
		t.Fatal(err)
	}
	table := func(s string) string { return s[:strings.LastIndex(s, "workers=")] }
	if table(out1) != table(out2) {
		t.Fatalf("sweep -exact reports differ across worker counts:\n%s\nvs\n%s", out1, out2)
	}
	if !strings.Contains(out1, "sweep n=4") || !strings.Contains(out1, "critical n=4") {
		t.Fatalf("sweep -exact output missing a section:\n%s", out1)
	}
	// The critical section matches the dedicated subcommand byte for byte.
	bncg.ResetSharedSweepCache()
	crit, err := runCLI(t, "", "critical", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out1, crit) {
		t.Fatalf("sweep -exact critical section differs from `bncg critical`:\n%s\nvs\n%s", out1, crit)
	}
}

// TestCriticalCommandStore: `critical -store` persists certificates that a
// later sweep over any grid is fully served from.
func TestCriticalCommandStore(t *testing.T) {
	dir := t.TempDir()
	bncg.ResetSharedSweepCache()
	if _, err := runCLI(t, "", "critical", "-n", "4", "-store", dir); err != nil {
		t.Fatal(err)
	}
	bncg.ResetSharedSweepCache()
	// A dense shifted grid no prior run ever touched: every verdict must
	// still come from the persisted certificates.
	out, err := runCLI(t, "", "sweep", "-n", "4", "-alphas", "1/3,2/3,4/3,7/3,11/3", "-store", dir)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cacheLine(t, out)
	if misses != 0 || hits == 0 {
		t.Fatalf("dense-grid sweep not served from certificates: %d hits, %d misses", hits, misses)
	}
}

// TestServeReplicaCommand: `bncg serve -readonly` boots against a store a
// writer produced, serves its verdicts from certificates without taking
// the writer lock — a writer can still open the directory while the
// replica runs — and the re-warm loop folds in records the writer
// flushes afterwards.
func TestServeReplicaCommand(t *testing.T) {
	dir := t.TempDir()
	seed := func(n int) {
		st, err := bncg.OpenStore(dir, bncg.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cache := bncg.NewSweepCache()
		cache.Persist(st)
		if _, err := bncg.RunSweep(context.Background(), bncg.SweepOptions{
			N:        n,
			Alphas:   []bncg.Alpha{bncg.AlphaInt(2)},
			Concepts: bncg.Concepts(),
			Cache:    cache,
		}); err != nil {
			t.Fatal(err)
		}
		cache.Persist(nil)
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	seed(4)

	bncg.ResetSharedSweepCache()
	t.Cleanup(func() { bncg.ResetSharedSweepCache() })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncWriter
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-store", dir,
			"-readonly", "-rewarm-interval", "25ms", "-rate", "500", "-burst", "100",
			"-max-inflight", "8"}, strings.NewReader(""), &out)
	}()
	var base string
	for deadline := time.Now().Add(5 * time.Second); ; {
		s := out.String()
		if i := strings.Index(s, "listening on http://"); i >= 0 {
			base = strings.TrimSpace(s[i+len("listening on "):])
			base = strings.Split(base, "\n")[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never came up:\n%s", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "replica") {
		t.Fatalf("boot banner does not announce replica mode:\n%s", out.String())
	}

	httpGet := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if _, body := httpGet(base + "/healthz"); !strings.Contains(body, `"role": "replica"`) {
		t.Fatalf("healthz:\n%s", body)
	}

	check := func(n int) (string, bool) {
		t.Helper()
		resp, err := http.Post(base+"/v1/check?alpha=7/3&concept=PS", "text/plain",
			strings.NewReader(bncg.EncodeGraph(bncg.Star(n))))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check n=%d: status %d: %s", n, resp.StatusCode, b)
		}
		return string(b), strings.Contains(string(b), `"from_cache": true`)
	}
	if body, cached := check(4); !cached {
		t.Fatalf("warm-started certificate did not answer: %s", body)
	}

	// The replica holds no writer lock: the writer reopens the directory
	// while the replica serves, ingests n=5, and the re-warm loop picks it
	// up without a restart.
	seed(5)
	for deadline := time.Now().Add(10 * time.Second); ; {
		if _, cached := check(5); cached {
			break
		}
		if time.Now().After(deadline) {
			_, metrics := httpGet(base + "/metrics")
			t.Fatalf("re-warm never surfaced the writer's n=5 certificates\n%s", metrics)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if _, metrics := httpGet(base + "/metrics"); !strings.Contains(metrics, "bncg_readonly 1") {
		t.Fatalf("replica metrics:\n%s", metrics)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("replica exited non-zero: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replica did not shut down")
	}
}

// TestServeReadonlyRequiresStore: a replica without a store directory is
// a configuration error, caught before binding a socket.
func TestServeReadonlyRequiresStore(t *testing.T) {
	_, err := runCLI(t, "", "serve", "-readonly", "-addr", "127.0.0.1:0")
	if err == nil || !strings.Contains(err.Error(), "-store") {
		t.Fatalf("err = %v, want the -readonly/-store usage error", err)
	}
}

// TestFleetCommandsEndToEnd drives the whole distributed-sweep surface
// through the CLI: plan a fleet, race two workers over it, have the
// coordinator observe completion and merge the shards, and check the
// merged store dumps byte-identically to a single-process sweep of the
// same grid. `store stats` must expose the per-segment breakdown.
func TestFleetCommandsEndToEnd(t *testing.T) {
	fleetDir := filepath.Join(t.TempDir(), "fleet")
	out, err := runCLI(t, "", "fleet", "-dir", fleetDir, "-n", "4", "-range-size", "2", "-plan-only")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "planned") {
		t.Fatalf("plan-only output:\n%s", out)
	}

	var wg sync.WaitGroup
	outs := make([]string, 2)
	errs := make([]error, 2)
	for i := range outs {
		id := fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[i], errs[i] = runCLI(t, "", "worker", "-dir", fleetDir, "-id", id, "-ttl", "5s", "-poll", "50ms")
		}()
	}
	wg.Wait()
	for i := range outs {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v\n%s", i, errs[i], outs[i])
		}
		if !strings.Contains(outs[i], "fleet done") {
			t.Fatalf("worker %d output:\n%s", i, outs[i])
		}
	}

	merged := filepath.Join(t.TempDir(), "merged")
	out, err = runCLI(t, "", "fleet", "-dir", fleetDir, "-n", "4", "-range-size", "2", "-merge-out", merged)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "merged store complete") {
		t.Fatalf("coordinator merge output:\n%s", out)
	}

	// The reference: one process, same grid (the fleet pins α=1).
	bncg.ResetSharedSweepCache()
	refDir := t.TempDir()
	if _, err := runCLI(t, "", "sweep", "-n", "4", "-alphas", "1", "-store", refDir); err != nil {
		t.Fatal(err)
	}
	bncg.ResetSharedSweepCache()
	dumpMerged, err := runCLI(t, "", "store", "dump", "-dir", merged)
	if err != nil {
		t.Fatal(err)
	}
	dumpRef, err := runCLI(t, "", "store", "dump", "-dir", refDir)
	if err != nil {
		t.Fatal(err)
	}
	if dumpMerged == "" || dumpMerged != dumpRef {
		t.Fatalf("merged fleet store is not record-identical to the single-process sweep:\n--- merged\n%s--- single\n%s", dumpMerged, dumpRef)
	}

	statsOut, err := runCLI(t, "", "store", "stats", "-dir", merged)
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		SegmentDetail []struct {
			Name    string `json:"name"`
			Bytes   int64  `json:"bytes"`
			Records int    `json:"records"`
		} `json:"segment_detail"`
	}
	if err := json.Unmarshal([]byte(statsOut), &stats); err != nil {
		t.Fatalf("store stats JSON: %v\n%s", err, statsOut)
	}
	if len(stats.SegmentDetail) == 0 {
		t.Fatalf("store stats without segment detail:\n%s", statsOut)
	}
	for _, seg := range stats.SegmentDetail {
		if seg.Name == "" || seg.Bytes <= 0 {
			t.Fatalf("implausible segment stat %+v", seg)
		}
	}
}

// TestStoreMergeConflictFailsCLI: `store merge` must exit non-zero when
// two shards contradict each other, and say so.
func TestStoreMergeConflictFailsCLI(t *testing.T) {
	shardA, shardB := t.TempDir(), t.TempDir()
	for i, stable := range []bool{true, false} {
		dir := []string{shardA, shardB}[i]
		st, err := bncg.OpenStore(dir, bncg.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(bncg.StoreRecord{Canon: "c", Num: 1, Den: 1, Concept: 1, Stable: stable}); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
	out, err := runCLI(t, "", "store", "merge", "-out", t.TempDir(), shardA, shardB)
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("contradictory shards merged: err=%v\n%s", err, out)
	}
}
