package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(context.Background(), args, strings.NewReader(stdin), &out)
	return out.String(), err
}

func TestList(t *testing.T) {
	out, err := runCLI(t, "", "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1-PS", "F1a", "L2.4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestGenAndCheckPipe(t *testing.T) {
	graphText, err := runCLI(t, "", "gen", "star", "6")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, graphText, "check", "-alpha", "2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "UNSTABLE") {
		t.Fatalf("star should be stable everywhere at α=2:\n%s", out)
	}
	out, err = runCLI(t, graphText, "check", "-alpha", "1/2", "-concept", "BAE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNSTABLE") {
		t.Fatalf("star at α=1/2 should fail BAE:\n%s", out)
	}
}

func TestGenFamilies(t *testing.T) {
	for _, tc := range [][]string{
		{"gen", "clique", "4"},
		{"gen", "path", "5"},
		{"gen", "cycle", "5"},
		{"gen", "dary", "10", "3"},
		{"gen", "stretched", "2", "2"},
		{"gen", "treestar", "1", "7", "30"},
	} {
		out, err := runCLI(t, "", tc...)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if !strings.HasPrefix(out, "n ") {
			t.Fatalf("%v: output not in edge-list format:\n%s", tc, out)
		}
	}
}

func TestCost(t *testing.T) {
	graphText, err := runCLI(t, "", "gen", "star", "5")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, graphText, "cost", "-alpha", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rho: 1.0000") {
		t.Fatalf("star should be optimal at α=3:\n%s", out)
	}
}

func TestPoA(t *testing.T) {
	out, err := runCLI(t, "", "poa", "-n", "6", "-alpha", "4", "-concept", "PS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "worst ρ") || !strings.Contains(out, "witness") {
		t.Fatalf("poa output:\n%s", out)
	}
}

func TestSweepCommand(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "4", "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sweep n=4 source=graphs: 6 graphs", "BSE", "workers=2 cache:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
	// Deterministic report: same grid, different pool size, fresh shared
	// cache state — the table (everything before the cache line) matches.
	out2, err := runCLI(t, "", "sweep", "-n", "4", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	table := func(s string) string { return s[:strings.LastIndex(s, "workers=")] }
	if table(out) != table(out2) {
		t.Fatalf("sweep reports differ across worker counts:\n%s\nvs\n%s", out, out2)
	}
}

func TestSweepCommandTreesAndConcepts(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "7", "-trees", "-alphas", "4", "-concepts", "PS,BGE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep n=7 source=trees: 11 graphs × 1 α × 2 concepts") {
		t.Fatalf("sweep trees output:\n%s", out)
	}
}

func TestExperimentCommand(t *testing.T) {
	out, err := runCLI(t, "", "experiment", "F3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[PASS]") {
		t.Fatalf("experiment output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"gen"},
		{"gen", "star"},
		{"gen", "star", "x"},
		{"gen", "nope", "5"},
		{"check", "-alpha", "zzz"},
		{"check"},
		{"poa", "-alpha", "2", "-concept", "nope"},
		{"experiment"},
		{"experiment", "nope"},
		{"sweep", "-n", "0"},
		{"sweep", "-alphas", "x"},
		{"sweep", "-concepts", "nope"},
	}
	for _, tc := range cases {
		if _, err := runCLI(t, "", tc...); err == nil {
			t.Fatalf("args %v: expected error", tc)
		}
	}
}

func TestSweepRhoAndJSON(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "4", "-rho", "-json", "-alphas", "2", "-concepts", "PS")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		N         int      `json:"n"`
		Source    string   `json:"source"`
		Alphas    []string `json:"alphas"`
		Concepts  []string `json:"concepts"`
		Graphs    int      `json:"graphs"`
		Completed int      `json:"completed"`
		GraphList []string `json:"graph_list"`
		Items     []struct {
			Vector uint16  `json:"vector"`
			Rho    float64 `json:"rho"`
			Done   bool    `json:"done"`
		} `json:"items"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("sweep -json output is not valid JSON: %v\n%s", err, out)
	}
	if res.N != 4 || res.Source != "graphs" || res.Graphs != 6 || res.Completed != 6 {
		t.Fatalf("unexpected sweep JSON header: %+v", res)
	}
	if len(res.Items) != 6 || len(res.GraphList) != 6 {
		t.Fatalf("want 6 items and graphs, got %d/%d", len(res.Items), len(res.GraphList))
	}
	sawRho := false
	for _, it := range res.Items {
		if !it.Done {
			t.Fatalf("completed sweep has undone item: %+v", it)
		}
		if it.Rho > 1 {
			sawRho = true
		}
	}
	if !sawRho {
		t.Fatal("-rho did not populate any ρ > 1")
	}
}

func TestPoAJSON(t *testing.T) {
	out, err := runCLI(t, "", "poa", "-n", "5", "-alpha", "3", "-concept", "PS", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var res struct {
		N          int     `json:"n"`
		Alpha      string  `json:"alpha"`
		Concept    string  `json:"concept"`
		Rho        float64 `json:"rho"`
		Witness    string  `json:"witness"`
		Candidates int     `json:"candidates"`
		Partial    bool    `json:"partial"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("poa -json output is not valid JSON: %v\n%s", err, out)
	}
	if res.N != 5 || res.Alpha != "3" || res.Concept != "PS" || res.Rho < 1 || res.Partial {
		t.Fatalf("unexpected poa JSON: %+v", res)
	}
	if !strings.HasPrefix(res.Witness, "n 5\n") {
		t.Fatalf("witness not in edge-list format: %q", res.Witness)
	}
}

func TestExperimentJSON(t *testing.T) {
	out, err := runCLI(t, "", "experiment", "F3", "-json")
	if err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		ID      string `json:"id"`
		Title   string `json:"title"`
		AllPass bool   `json:"all_pass"`
		Checks  []struct {
			Name string `json:"name"`
			Pass bool   `json:"pass"`
		} `json:"checks"`
	}
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("experiment -json output is not valid JSON: %v\n%s", err, out)
	}
	if len(reports) != 1 || reports[0].ID != "F3" || !reports[0].AllPass || len(reports[0].Checks) == 0 {
		t.Fatalf("unexpected experiment JSON: %+v", reports)
	}
}

// TestTimeoutInterruptsSweep: an unmeetable global deadline still prints
// the partial report and surfaces an "interrupted" error — the same path a
// SIGINT takes through signal.NotifyContext.
func TestTimeoutInterruptsSweep(t *testing.T) {
	out, err := runCLI(t, "", "-timeout", "1ns", "sweep", "-n", "6")
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("err = %v, want interrupted", err)
	}
	if !strings.Contains(out, "sweep n=6") {
		t.Fatalf("partial report missing:\n%s", out)
	}
	out, err = runCLI(t, "", "-timeout", "1ns", "poa", "-n", "8", "-alpha", "4", "-concept", "PS")
	if err == nil || !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("poa err = %v, want interrupted", err)
	}
	if !strings.Contains(out, "(partial)") {
		t.Fatalf("poa partial marker missing:\n%s", out)
	}
	if _, err := runCLI(t, "", "-timeout", "1m", "list"); err != nil {
		t.Fatalf("generous timeout broke list: %v", err)
	}
}
