package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	err := run(args, strings.NewReader(stdin), &out)
	return out.String(), err
}

func TestList(t *testing.T) {
	out, err := runCLI(t, "", "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"T1-PS", "F1a", "L2.4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestGenAndCheckPipe(t *testing.T) {
	graphText, err := runCLI(t, "", "gen", "star", "6")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, graphText, "check", "-alpha", "2")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "UNSTABLE") {
		t.Fatalf("star should be stable everywhere at α=2:\n%s", out)
	}
	out, err = runCLI(t, graphText, "check", "-alpha", "1/2", "-concept", "BAE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "UNSTABLE") {
		t.Fatalf("star at α=1/2 should fail BAE:\n%s", out)
	}
}

func TestGenFamilies(t *testing.T) {
	for _, tc := range [][]string{
		{"gen", "clique", "4"},
		{"gen", "path", "5"},
		{"gen", "cycle", "5"},
		{"gen", "dary", "10", "3"},
		{"gen", "stretched", "2", "2"},
		{"gen", "treestar", "1", "7", "30"},
	} {
		out, err := runCLI(t, "", tc...)
		if err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
		if !strings.HasPrefix(out, "n ") {
			t.Fatalf("%v: output not in edge-list format:\n%s", tc, out)
		}
	}
}

func TestCost(t *testing.T) {
	graphText, err := runCLI(t, "", "gen", "star", "5")
	if err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, graphText, "cost", "-alpha", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rho: 1.0000") {
		t.Fatalf("star should be optimal at α=3:\n%s", out)
	}
}

func TestPoA(t *testing.T) {
	out, err := runCLI(t, "", "poa", "-n", "6", "-alpha", "4", "-concept", "PS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "worst ρ") || !strings.Contains(out, "witness") {
		t.Fatalf("poa output:\n%s", out)
	}
}

func TestSweepCommand(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "4", "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sweep n=4 source=graphs: 6 graphs", "BSE", "workers=2 cache:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out)
		}
	}
	// Deterministic report: same grid, different pool size, fresh shared
	// cache state — the table (everything before the cache line) matches.
	out2, err := runCLI(t, "", "sweep", "-n", "4", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	table := func(s string) string { return s[:strings.LastIndex(s, "workers=")] }
	if table(out) != table(out2) {
		t.Fatalf("sweep reports differ across worker counts:\n%s\nvs\n%s", out, out2)
	}
}

func TestSweepCommandTreesAndConcepts(t *testing.T) {
	out, err := runCLI(t, "", "sweep", "-n", "7", "-trees", "-alphas", "4", "-concepts", "PS,BGE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep n=7 source=trees: 11 graphs × 1 α × 2 concepts") {
		t.Fatalf("sweep trees output:\n%s", out)
	}
}

func TestExperimentCommand(t *testing.T) {
	out, err := runCLI(t, "", "experiment", "F3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[PASS]") {
		t.Fatalf("experiment output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"gen"},
		{"gen", "star"},
		{"gen", "star", "x"},
		{"gen", "nope", "5"},
		{"check", "-alpha", "zzz"},
		{"check"},
		{"poa", "-alpha", "2", "-concept", "nope"},
		{"experiment"},
		{"experiment", "nope"},
		{"sweep", "-n", "0"},
		{"sweep", "-alphas", "x"},
		{"sweep", "-concepts", "nope"},
	}
	for _, tc := range cases {
		if _, err := runCLI(t, "", tc...); err == nil {
			t.Fatalf("args %v: expected error", tc)
		}
	}
}
