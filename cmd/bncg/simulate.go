package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	bncg "repro"
)

// runSimulate is the large-n stochastic workload: batches of
// improving-response trajectories on the incremental-distance dynamics
// engine, sampled across an α grid from random initial states. Where
// sweep enumerates every class exhaustively, simulate samples — the same
// per-trajectory determinism (seed → byte-identical report) at n = 50–500.
func runSimulate(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var cf commonFlags
	n := fs.Int("n", 100, "node count")
	alphasStr := fs.String("alphas", "1/2,2,10,100", "comma-separated α grid")
	trajectories := fs.Int("trajectories", 50, "trajectories per α")
	initStr := fs.String("init", "all", "initial-state family: er, tree, star, or all (cycled)")
	movesStr := fs.String("moves", "ps", `move set: "ps" (remove+add) or "bge" (remove+add+swap)`)
	schedStr := fs.String("scheduler", "uniform", "move scheduler: uniform, roundrobin, or breakpoint-guided")
	maxSteps := fs.Int("max-steps", 0, "step bound per trajectory (0 = 10·n²)")
	seed := fs.Uint64("seed", 0, "base seed for the deterministic per-trajectory derivation (0 = default)")
	edgeProb := fs.Float64("p", 0, "Erdős–Rényi edge probability for -init er (0 = 4/n)")
	cf.addWorkers(fs, "trajectory worker pool size (0 = all CPUs)")
	cf.addVariant(fs)
	asJSON := fs.Bool("json", false, "emit the full result (every trajectory + summaries) as JSON")
	progress := fs.Bool("progress", false, "report trajectory completion on stderr")
	cf.addTrace(fs, "append NDJSON spans for this batch to <file> (read back with `bncg trace`)")
	cf.addSidecar(fs, "simulate")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alphas, err := parseAlphaGrid(*alphasStr)
	if err != nil {
		return err
	}
	inits, err := bncg.ParseSimInits(*initStr)
	if err != nil {
		return err
	}
	kinds, err := parseMoveSet(*movesStr)
	if err != nil {
		return err
	}
	sched, ok := bncg.ParseScheduler(*schedStr)
	if !ok {
		return fmt.Errorf("simulate: unknown scheduler %q (want uniform, roundrobin, or breakpoint-guided)", *schedStr)
	}
	variant, err := cf.variant()
	if err != nil {
		return err
	}
	tracer, closeTracer, err := cf.openTracer("simulate")
	if err != nil {
		return err
	}
	defer closeTracer()
	metrics := cf.metrics()
	closeSidecar, err := cf.startSidecar("simulate", metrics)
	if err != nil {
		return err
	}
	defer closeSidecar()

	opts := bncg.SimOptions{
		N:            *n,
		Alphas:       alphas,
		Trajectories: *trajectories,
		Inits:        inits,
		Kinds:        kinds,
		Scheduler:    sched,
		MaxSteps:     *maxSteps,
		Seed:         *seed,
		EdgeProb:     *edgeProb,
		Workers:      *cf.workers,
		Variant:      variant,
		Trace:        tracer,
		Metrics:      metrics,
	}
	if *progress {
		opts.Progress = func(done, total int) {
			if done%16 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsimulate: %d/%d trajectories", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	res, err := bncg.Simulate(ctx, opts)
	if err != nil && !interrupted(err) {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(res); jerr != nil {
			return jerr
		}
	} else {
		fmt.Fprint(stdout, res.Report())
	}
	if err != nil {
		return fmt.Errorf("interrupted with %d of %d trajectories done: %w",
			len(res.Items), len(alphas)**trajectories, err)
	}
	return nil
}

// parseMoveSet maps the dynamics target concept onto its move families.
func parseMoveSet(s string) ([]bncg.DynamicsKind, error) {
	switch s {
	case "", "ps":
		return []bncg.DynamicsKind{bncg.RemoveKind, bncg.AddKind}, nil
	case "bge":
		return []bncg.DynamicsKind{bncg.RemoveKind, bncg.AddKind, bncg.SwapKind}, nil
	}
	return nil, fmt.Errorf(`simulate: unknown move set %q (want "ps" or "bge")`, s)
}
