// Command bncg is the CLI for the Bilateral Network Creation Game library:
// it generates the paper's graph families, checks equilibrium concepts,
// computes costs and Price-of-Anarchy searches, and runs the
// paper-reproduction experiments.
//
// Usage:
//
//	bncg [-timeout <d>] list
//	bncg [-timeout <d>] experiment <id>|all [-full] [-json]
//	bncg [-timeout <d>] gen <family> [params...]
//	bncg [-timeout <d>] check -alpha <p[/q]> [-concept <name>] [-file <graph>]
//	bncg [-timeout <d>] cost -alpha <p[/q]> [-file <graph>]
//	bncg [-timeout <d>] poa -n <nodes> -alpha <p[/q]> -concept <name> [-graphs] [-json]
//	bncg [-timeout <d>] sweep [-n <nodes>] [-workers <w>] [-alphas <grid>]
//	     [-concepts <list>] [-variant <desc>] [-trees] [-rho] [-exact]
//	     [-json] [-progress] [-store <dir>] [-resume] [-trace <file>]
//	     [-metrics-addr <host:port>] [-pprof]
//	bncg [-timeout <d>] simulate [-n <nodes>] [-alphas <grid>]
//	     [-trajectories <t>] [-init er|tree|star|all] [-moves ps|bge]
//	     [-scheduler <name>] [-max-steps <s>] [-seed <s>] [-p <prob>]
//	     [-workers <w>] [-variant <desc>] [-json] [-progress]
//	     [-trace <file>] [-metrics-addr <host:port>] [-pprof]
//	bncg [-timeout <d>] critical [-n <nodes>] [-workers <w>]
//	     [-concepts <list>] [-variant <desc>] [-trees] [-json] [-store <dir>]
//	bncg serve [-addr <host:port>] [-store <dir>] [-workers <w>]
//	     [-variant <desc>] [-max-n <n>] [-max-tree-n <n>]
//	     [-request-timeout <d>] [-rate <r/s>] [-burst <b>]
//	     [-max-inflight <c>] [-max-queue <q>] [-queue-wait <d>] [-readonly]
//	     [-rewarm-interval <d>] [-pprof]
//	bncg store stats|compact|dump -dir <dir>
//	bncg store merge -out <dir> <shard>...
//	bncg [-timeout <d>] fleet -dir <dir> [-n <nodes>] [-concepts <list>]
//	     [-variant <desc>] [-trees] [-range-size <k>] [-watch <d>]
//	     [-plan-only] [-merge-out <dir>] [-trace <file>]
//	bncg fleet status -dir <dir> [-json]
//	bncg [-timeout <d>] worker -dir <dir> [-id <name>] [-store <dir>]
//	     [-variant <desc>] [-ttl <d>] [-poll <d>] [-workers <w>] [-progress]
//	     [-trace <file>] [-metrics-addr <host:port>] [-pprof]
//	bncg trace [-json] [-top <k>] <file>...
//
// The global -timeout flag bounds the whole invocation; SIGINT (Ctrl-C)
// cancels gracefully. In both cases the long-running subcommands (sweep,
// simulate, poa, experiment) drain their workers, print the partial report
// computed so far, and exit non-zero; serve shuts down gracefully and
// exits zero.
// A second SIGINT kills the process.
//
// fleet and worker together form the distributed sweep: `fleet -dir d`
// plans the pruned class stream into lease ranges and persists the table
// in d; any number of `worker -dir d` processes (sharing d's filesystem)
// claim ranges, certify them, and append certificates each to its own
// store shard under d/shards/<id>. The coordinator reclaims leases whose
// worker died (missed heartbeats past the TTL), so killed workers cost
// only time. `store merge` folds the shards into one canonical store —
// identical duplicate records (from reclaimed, re-run ranges) fold
// silently; contradictory records fail the merge loudly. `store dump`
// prints a store's records in a deterministic order, so byte-comparing
// dumps checks that a merged fleet store equals a single-process sweep.
//
// With -store, sweep warm-starts the verdict cache from the persistent
// store, appends every newly computed verdict to it, and checkpoints its
// progress — an interrupted grid continues with `sweep -store <dir>
// -resume` and finishes with byte-identical Items. serve backs the HTTP
// daemon with the same store; serve -readonly boots a read replica that
// opens the store without the writer lock, never persists, and re-warms
// its cache from the writer's flushed segments every -rewarm-interval.
//
// Observability: -trace appends NDJSON spans (enumeration, per-class
// certify breakdowns, store flushes, lease lifecycle) to a file the
// `bncg trace` analyzer reads back — point it at one sweep trace or at
// every shard trace of a fleet run and it reports stage breakdowns, the
// slowest classes, and a per-worker timeline with steals marked.
// -metrics-addr starts a sidecar HTTP listener on sweep and worker
// serving the same Prometheus text exposition as serve's /metrics
// (classes, certify latency, cache and store counters, lease gauges);
// -pprof mounts net/http/pprof on that sidecar, and on serve's own mux.
// `fleet status` prints a read-only snapshot of the lease table without
// taking the writer lock, so it is safe against a live fleet.
//
// Game variants (v9): -variant selects which game the engine evaluates —
// "unilateral" (consent), "max" (eccentricity distance), "mul:AGENT=P/Q"
// (per-agent price multipliers), comma-joined; the empty default is the
// paper's bilateral sum-distance game. sweep and critical certify the
// selected variant (verdicts, certificates and checkpoints persist
// variant-tagged); serve makes it the daemon's default, which requests
// override per call with ?variant=; fleet plans it into the lease table,
// and worker -variant asserts the table's grid matches before joining.
//
// Simulation (v10): `simulate` samples improving-response dynamics where
// enumeration cannot reach — batches of trajectories on the
// incremental-distance engine from random initial states (Erdős–Rényi,
// uniform trees, stars) across an α grid at n = 50–500. Every trajectory's
// seed derives deterministically from -seed and its grid coordinates, and
// results stream in index order, so the same flags print a byte-identical
// report at any -workers count. -scheduler picks the move-scan policy
// (uniform, roundrobin, or the certificate-guided breakpoint scheduler);
// -moves ps|bge picks the target concept's move families. The daemon
// exposes the same workload as GET /v1/simulate, streamed as NDJSON.
//
// Graphs are read in the plain text edge-list format ("n <count>" then one
// "u v" pair per line); with no -file, standard input is read.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	bncg "repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// Once the first signal has cancelled ctx, restore default signal
		// handling so a second Ctrl-C force-kills a stuck drain.
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bncg:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdin io.Reader, stdout io.Writer) error {
	global := flag.NewFlagSet("bncg", flag.ContinueOnError)
	timeout := global.Duration("timeout", 0, "global deadline for the whole invocation (0 = none)")
	global.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: bncg [-timeout <d>] <subcommand> [flags]")
		global.PrintDefaults()
	}
	// Flag parsing stops at the first non-flag argument, so global flags go
	// before the subcommand and subcommand flags after it.
	if err := global.Parse(args); err != nil {
		return err
	}
	args = global.Args()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (list, experiment, gen, check, cost, poa, sweep, simulate, critical, serve, store, fleet, worker, trace)")
	}
	switch args[0] {
	case "list":
		return runList(stdout)
	case "experiment":
		return runExperiment(ctx, args[1:], stdout)
	case "gen":
		return runGen(args[1:], stdout)
	case "check":
		return runCheck(args[1:], stdin, stdout)
	case "cost":
		return runCost(args[1:], stdin, stdout)
	case "poa":
		return runPoA(ctx, args[1:], stdout)
	case "sweep":
		return runSweep(ctx, args[1:], stdout)
	case "simulate":
		return runSimulate(ctx, args[1:], stdout)
	case "critical":
		return runCritical(ctx, args[1:], stdout)
	case "serve":
		return runServe(ctx, args[1:], stdout)
	case "store":
		return runStore(args[1:], stdout)
	case "fleet":
		return runFleet(ctx, args[1:], stdout)
	case "worker":
		return runWorker(ctx, args[1:], stdout)
	case "trace":
		return runTrace(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// interrupted reports whether err is a context cancellation or deadline —
// the cases where a partial report has already been printed.
func interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func runList(stdout io.Writer) error {
	fmt.Fprintln(stdout, "experiments (DESIGN.md §4):")
	for _, id := range bncg.ExperimentIDs() {
		fmt.Fprintln(stdout, " ", id)
	}
	return nil
}

func runExperiment(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	full := fs.Bool("full", false, "run at full scale (slower, extends sweeps)")
	asJSON := fs.Bool("json", false, "emit reports as a JSON array instead of text")
	// Accept flags before or after the experiment id.
	var flags, positional []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			flags = append(flags, a)
		} else {
			positional = append(positional, a)
		}
	}
	if err := fs.Parse(flags); err != nil {
		return err
	}
	if len(positional) != 1 {
		return fmt.Errorf("experiment: want exactly one id or 'all'")
	}
	scale := bncg.Quick
	if *full {
		scale = bncg.Full
	}
	ids := positional
	if positional[0] == "all" {
		ids = bncg.ExperimentIDs()
	}
	var reports []*bncg.ExperimentReport
	failed := 0
	var runErr error
	for _, id := range ids {
		rep, err := bncg.Experiment(ctx, id, scale)
		if err != nil && !interrupted(err) {
			return err
		}
		if rep != nil {
			reports = append(reports, rep)
			if !rep.AllPass() {
				failed++
			}
		}
		if err != nil {
			runErr = err
			break
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, rep := range reports {
			fmt.Fprintln(stdout, rep)
		}
	}
	if runErr != nil {
		return fmt.Errorf("interrupted after %d of %d experiment(s): %w", len(reports), len(ids), runErr)
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) had failing checks", failed)
	}
	return nil
}

func runGen(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("gen: want a family: star|clique|path|cycle|dary|stretched|treestar")
	}
	atoi := func(i int, name string) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("gen %s: missing %s", args[0], name)
		}
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return 0, fmt.Errorf("gen %s: bad %s %q", args[0], name, args[i])
		}
		return v, nil
	}
	var g *bncg.Graph
	switch args[0] {
	case "star", "clique", "path", "cycle":
		n, err := atoi(1, "node count")
		if err != nil {
			return err
		}
		switch args[0] {
		case "star":
			g = bncg.Star(n)
		case "clique":
			g = bncg.Clique(n)
		case "path":
			g = bncg.Path(n)
		case "cycle":
			g = bncg.Cycle(n)
		}
	case "dary":
		n, err := atoi(1, "node count")
		if err != nil {
			return err
		}
		d, err := atoi(2, "arity")
		if err != nil {
			return err
		}
		g = bncg.AlmostCompleteDAry(n, d)
	case "stretched":
		d, err := atoi(1, "depth")
		if err != nil {
			return err
		}
		k, err := atoi(2, "stretch factor")
		if err != nil {
			return err
		}
		g = bncg.NewStretched(d, k).G
	case "treestar":
		k, err := atoi(1, "stretch factor")
		if err != nil {
			return err
		}
		t, err := atoi(2, "target subtree size")
		if err != nil {
			return err
		}
		eta, err := atoi(3, "target size")
		if err != nil {
			return err
		}
		ts, err := bncg.NewTreeStar(k, float64(t), eta)
		if err != nil {
			return err
		}
		g = ts.G
	default:
		return fmt.Errorf("gen: unknown family %q", args[0])
	}
	fmt.Fprint(stdout, bncg.EncodeGraph(g))
	return nil
}

func parseAlpha(s string) (bncg.Alpha, error) {
	if s == "" {
		return bncg.Alpha{}, fmt.Errorf("missing -alpha")
	}
	return bncg.ParseAlpha(s)
}

func parseConcept(s string) (bncg.Concept, error) {
	return bncg.ParseConcept(s)
}

// parseAlphaGrid parses a comma-separated α grid ("1/2,1,2").
func parseAlphaGrid(s string) ([]bncg.Alpha, error) {
	var alphas []bncg.Alpha
	for _, part := range strings.Split(s, ",") {
		a, err := parseAlpha(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		alphas = append(alphas, a)
	}
	return alphas, nil
}

// parseConceptList parses a comma-separated concept list; "all" selects
// every concept.
func parseConceptList(s string) ([]bncg.Concept, error) {
	concepts := bncg.Concepts()
	if s == "all" {
		return concepts, nil
	}
	concepts = concepts[:0]
	for _, part := range strings.Split(s, ",") {
		c, err := parseConcept(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		concepts = append(concepts, c)
	}
	return concepts, nil
}

func readGraph(file string, stdin io.Reader) (*bncg.Graph, error) {
	var data []byte
	var err error
	if file == "" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	return bncg.DecodeGraph(string(data))
}

func runCheck(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	alphaStr := fs.String("alpha", "", "edge price p or p/q")
	conceptStr := fs.String("concept", "", "single concept to check (default: all)")
	file := fs.String("file", "", "graph file (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	g, err := readGraph(*file, stdin)
	if err != nil {
		return err
	}
	gm, err := bncg.NewGame(g.N(), alpha)
	if err != nil {
		return err
	}
	concepts := bncg.Concepts()
	if *conceptStr != "" {
		c, err := parseConcept(*conceptStr)
		if err != nil {
			return err
		}
		concepts = []bncg.Concept{c}
	}
	for _, c := range concepts {
		res := bncg.Check(gm, g, c)
		if res.Stable {
			fmt.Fprintf(stdout, "%-6s stable\n", c)
		} else {
			fmt.Fprintf(stdout, "%-6s UNSTABLE: %v\n", c, res.Witness)
		}
	}
	return nil
}

func runCost(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cost", flag.ContinueOnError)
	alphaStr := fs.String("alpha", "", "edge price p or p/q")
	file := fs.String("file", "", "graph file (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	g, err := readGraph(*file, stdin)
	if err != nil {
		return err
	}
	gm, err := bncg.NewGame(g.N(), alpha)
	if err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		c := gm.AgentCost(g, u)
		fmt.Fprintf(stdout, "agent %d: %v (= %.3f)\n", u, c, c.Value(alpha))
	}
	total := gm.SocialCost(g)
	fmt.Fprintf(stdout, "social cost: %.3f  OPT: %.3f  rho: %.4f\n",
		total.Value(alpha), gm.OptCost().Value(alpha), gm.Rho(g))
	return nil
}

// checkpointEvery is the task granularity of sweep progress checkpoints
// written to -store.
const checkpointEvery = 256

// sameGrid reports whether two checkpoints describe the same sweep grid,
// ignoring progress.
func sameGrid(a, b bncg.SweepCheckpoint) bool {
	return a.N == b.N && a.Source == b.Source && a.Variant == b.Variant && a.Rho == b.Rho &&
		slices.Equal(a.Alphas, b.Alphas) && slices.Equal(a.Concepts, b.Concepts)
}

func runSweep(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var cf commonFlags
	n := fs.Int("n", 6, "node count (6 is the Full-scale lattice sweep)")
	cf.addWorkers(fs, "worker pool size (0 = all CPUs)")
	alphasStr := fs.String("alphas", "1/2,1,3/2,2,3,5", "comma-separated α grid")
	conceptsStr := fs.String("concepts", "all", "comma-separated concepts (default: all nine)")
	cf.addVariant(fs)
	trees := fs.Bool("trees", false, "sweep free trees instead of connected graphs")
	rho := fs.Bool("rho", false, "also compute the social cost ratio ρ per graph")
	exact := fs.Bool("exact", false, "append the exact critical-α report: the rational thresholds where verdicts flip")
	asJSON := fs.Bool("json", false, "emit the full result as JSON instead of the text report")
	progress := fs.Bool("progress", false, "report task completion and cache stats on stderr")
	cf.addStore(fs, "verdict store directory: warm-start the cache, persist new verdicts, checkpoint progress")
	resume := fs.Bool("resume", false, "resume the checkpointed sweep in -store (grid flags come from the checkpoint)")
	cf.addTrace(fs, "append NDJSON spans for this sweep to <file> (read back with `bncg trace`)")
	cf.addSidecar(fs, "sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alphas, err := parseAlphaGrid(*alphasStr)
	if err != nil {
		return err
	}
	concepts, err := parseConceptList(*conceptsStr)
	if err != nil {
		return err
	}
	variant, err := cf.variant()
	if err != nil {
		return err
	}
	source := bncg.SweepGraphs
	if *trees {
		source = bncg.SweepTrees
	}
	opts := bncg.SweepOptions{
		N:        *n,
		Alphas:   alphas,
		Concepts: concepts,
		Source:   source,
		Variant:  variant,
		Rho:      *rho,
	}

	tracer, closeTracer, err := cf.openTracer("sweep")
	if err != nil {
		return err
	}
	defer closeTracer()
	cache := bncg.SharedSweepCache()
	st, closeStore, err := cf.openSweepStore(cache, tracer, *progress)
	if err != nil {
		return err
	}
	defer closeStore()
	metrics := cf.metrics()
	bindCacheStats(metrics, cache)
	bindStoreStats(metrics, st)
	closeSidecar, err := cf.startSidecar("sweep", metrics)
	if err != nil {
		return err
	}
	defer closeSidecar()
	if *resume {
		if st == nil {
			return fmt.Errorf("sweep: -resume requires -store")
		}
		var cp bncg.SweepCheckpoint
		ok, err := st.LoadCheckpoint(&cp)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("sweep: nothing to resume: no checkpoint in %s", *cf.storeDir)
		}
		resumed, err := cp.Options()
		if err != nil {
			return err
		}
		opts = resumed
		fmt.Fprintf(os.Stderr, "sweep: resuming n=%d source=%s grid at %d/%d tasks\n",
			opts.N, opts.Source, cp.Completed, cp.Total)
	} else if st != nil {
		// Don't clobber another grid's resume state: a checkpoint in the
		// store means an interrupted sweep; only that same grid (whose
		// completion legitimately clears it) may run without -resume.
		var cp bncg.SweepCheckpoint
		ok, err := st.LoadCheckpoint(&cp)
		if err != nil {
			return err
		}
		if ok && !sameGrid(cp, bncg.NewSweepCheckpoint(opts, 0, 0)) {
			return fmt.Errorf("sweep: %s holds the checkpoint of an interrupted n=%d source=%s sweep (%d/%d tasks); continue it with `sweep -store %s -resume`, or delete %s to abandon it",
				*cf.storeDir, cp.N, cp.Source, cp.Completed, cp.Total, *cf.storeDir, filepath.Join(*cf.storeDir, "checkpoint.json"))
		}
	}
	opts.Workers = *cf.workers
	opts.Cache = cache
	opts.Trace = tracer
	opts.Metrics = metrics

	if *progress {
		opts.Progress = func(done, total int) {
			if done%64 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\rsweep: %d/%d tasks", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	if st != nil {
		// Checkpoint the grid spec + progress alongside the persisted
		// verdicts, so `sweep -store <dir> -resume` can continue after an
		// interrupt (or a crash, up to the store's flush batching).
		grid := opts
		prev := opts.Progress
		opts.Progress = func(done, total int) {
			if prev != nil {
				prev(done, total)
			}
			if done%checkpointEvery == 0 {
				_ = st.SaveCheckpoint(bncg.NewSweepCheckpoint(grid, total, done))
			}
		}
	}

	res, err := bncg.RunSweep(ctx, opts)
	if err != nil && !interrupted(err) {
		return err
	}
	if st != nil {
		if err == nil {
			// The grid is complete; the store holds every verdict and the
			// checkpoint has nothing left to describe.
			if cerr := st.ClearCheckpoint(); cerr != nil {
				return cerr
			}
		} else {
			_ = st.SaveCheckpoint(bncg.NewSweepCheckpoint(opts, len(res.Items), res.Completed))
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if jerr := enc.Encode(res); jerr != nil {
			return jerr
		}
	} else {
		fmt.Fprint(stdout, res.Report())
		if *exact {
			// The certificates behind the grid answer the whole α-axis;
			// print the exact thresholds, not just the sampled verdicts.
			fmt.Fprint(stdout, res.CriticalReport())
		}
		fmt.Fprintf(stdout, "workers=%d cache: %d hits, %d misses\n", res.Workers, res.Hits, res.Misses)
	}
	if *progress {
		stats := cache.Stats()
		fmt.Fprintf(os.Stderr, "cache: %d entries, lifetime %d hits / %d misses\n",
			stats.Entries, stats.Hits, stats.Misses)
	}
	if err != nil {
		return fmt.Errorf("interrupted with %d of %d tasks done: %w", res.Completed, len(res.Items), err)
	}
	return nil
}

// runCritical is the dedicated exact-threshold workload: certify every
// enumerated class once per concept and report, per concept, the rational
// α breakpoints at which any verdict flips, plus the stable-class counts
// on every region between (and at) them. No α grid exists because none is
// needed: the certificates answer the whole axis.
func runCritical(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("critical", flag.ContinueOnError)
	var cf commonFlags
	n := fs.Int("n", 5, "node count")
	cf.addWorkers(fs, "worker pool size (0 = all CPUs)")
	conceptsStr := fs.String("concepts", "all", "comma-separated concepts (default: all nine)")
	cf.addVariant(fs)
	trees := fs.Bool("trees", false, "analyze free trees instead of connected graphs")
	asJSON := fs.Bool("json", false, "emit the analysis as JSON instead of text")
	cf.addStore(fs, "verdict store directory: warm-start the certificate cache, persist new certificates")
	if err := fs.Parse(args); err != nil {
		return err
	}
	concepts, err := parseConceptList(*conceptsStr)
	if err != nil {
		return err
	}
	variant, err := cf.variant()
	if err != nil {
		return err
	}
	source := bncg.SweepGraphs
	if *trees {
		source = bncg.SweepTrees
	}
	cache := bncg.SharedSweepCache()
	_, closeStore, err := cf.openSweepStore(cache, nil, false)
	if err != nil {
		return err
	}
	defer closeStore()
	res, err := bncg.RunSweep(ctx, bncg.SweepOptions{
		N: *n,
		// A single-point grid satisfies the engine's options contract; the
		// certificates it computes cover every α.
		Alphas:   []bncg.Alpha{bncg.AlphaInt(1)},
		Concepts: concepts,
		Workers:  *cf.workers,
		Source:   source,
		Variant:  variant,
		Cache:    cache,
	})
	if err != nil {
		if interrupted(err) {
			return fmt.Errorf("interrupted with %d of %d classes done: %w", res.Completed, len(res.Items), err)
		}
		return err
	}
	if *asJSON {
		// res.Critical serializes through sweep.ConceptCritical.MarshalJSON,
		// the single schema definition shared with /v1/critical and the
		// sweep JSON.
		out := struct {
			SchemaVersion int                         `json:"schema_version"`
			N             int                         `json:"n"`
			Source        string                      `json:"source"`
			Variant       string                      `json:"variant,omitempty"`
			Classes       int                         `json:"classes"`
			Critical      []bncg.SweepConceptCritical `json:"critical"`
		}{bncg.SchemaVersion, *n, source.String(), variant.Key(), res.Graphs, res.Critical}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprint(stdout, res.CriticalReport())
	return nil
}

func runServe(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var cf commonFlags
	addr := fs.String("addr", "127.0.0.1:8371", "listen address")
	cf.addStore(fs, "verdict store directory backing the daemon")
	cf.addWorkers(fs, "sweep worker pool per computation (0 = all CPUs)")
	cf.addVariant(fs)
	maxN := fs.Int("max-n", 0, "cap on n for connected-graph requests (0 = default 7)")
	maxTreeN := fs.Int("max-tree-n", 0, "cap on n for free-tree requests (0 = default 12)")
	reqTimeout := fs.Duration("request-timeout", 0, "per-computation deadline (0 = default 2m)")
	flushInterval := fs.Duration("flush-interval", 2*time.Second, "store fsync batching interval")
	readonly := fs.Bool("readonly", false, "serve as a read replica: open -store without the writer lock, never persist, re-warm periodically")
	rewarmInterval := fs.Duration("rewarm-interval", 0, "replica re-warm period (0 = default 5s)")
	rate := fs.Float64("rate", 0, "per-client rate limit in requests/second (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-client token-bucket burst (0 = default 1; only with -rate)")
	maxInflight := fs.Int("max-inflight", 0, "global concurrent-request cap (0 = default 256)")
	maxQueue := fs.Int("max-queue", 0, "bounded request queue ahead of the cap (0 = default: the cap)")
	queueWait := fs.Duration("queue-wait", 0, "per-request queue deadline (0 = default 1s)")
	pprofFlag := fs.Bool("pprof", false, "mount /debug/pprof on the daemon mux")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *readonly && *cf.storeDir == "" {
		return fmt.Errorf("serve: -readonly requires -store (a replica serves a writer's store)")
	}
	variant, err := cf.variant()
	if err != nil {
		return err
	}
	cache := bncg.SharedSweepCache()
	var st *bncg.VerdictStore
	if *cf.storeDir != "" {
		var err error
		st, err = bncg.OpenStore(*cf.storeDir, bncg.StoreOptions{
			FlushInterval: *flushInterval,
			ReadOnly:      *readonly,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		loaded := cache.WarmStart(st)
		if *readonly {
			fmt.Fprintf(stdout, "store: %s (replica, %d records warm-started)\n", *cf.storeDir, loaded)
		} else {
			defer cache.Persist(nil)
			cache.Persist(st)
			fmt.Fprintf(stdout, "store: %s (%d verdicts warm-started)\n", *cf.storeDir, loaded)
		}
	}
	srv := bncg.NewServer(bncg.ServerConfig{
		Cache:          cache,
		Store:          st,
		Workers:        *cf.workers,
		DefaultVariant: variant,
		MaxN:           *maxN,
		MaxTreeN:       *maxTreeN,
		RequestTimeout: *reqTimeout,
		RatePerSec:     *rate,
		Burst:          *burst,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		QueueWait:      *queueWait,
		ReadOnly:       *readonly,
		RewarmInterval: *rewarmInterval,
		EnablePprof:    *pprofFlag,
	})
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bncg serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Graceful drain: stop accepting, let streaming responses finish,
		// then force-close laggards. A clean shutdown exits zero.
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			_ = hs.Close()
		}
		<-errc
		fmt.Fprintln(stdout, "bncg serve: shut down")
		return nil
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func runStore(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("store: want a verb: stats|compact|merge|dump")
	}
	verb, args := args[0], args[1:]
	if verb == "merge" {
		return runStoreMerge(args, stdout)
	}
	fs := flag.NewFlagSet("store "+verb, flag.ContinueOnError)
	dir := fs.String("dir", "", "verdict store directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("store %s: missing -dir", verb)
	}
	// stats and dump are pure reads: open without the writer lock so they
	// work against a store a live daemon or sweep holds. compact rewrites
	// segments and genuinely needs exclusivity.
	st, err := bncg.OpenStore(*dir, bncg.StoreOptions{ReadOnly: verb != "compact"})
	if err != nil {
		return err
	}
	defer st.Close()
	switch verb {
	case "stats":
		// The per-segment breakdown makes shard skew across a fleet
		// visible at a glance: uneven canonical-key hashing shows up as
		// one segment's bytes dwarfing its siblings'.
		out := struct {
			SchemaVersion int `json:"schema_version"`
			bncg.StoreStats
			SegmentDetail []bncg.StoreSegmentStat `json:"segment_detail"`
		}{bncg.SchemaVersion, st.Stats(), st.SegmentStats()}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	case "dump":
		return dumpStore(st, stdout)
	case "compact":
		before := st.Stats()
		if err := st.Compact(); err != nil {
			return err
		}
		after := st.Stats()
		fmt.Fprintf(stdout, "compacted %s: %d records, %d -> %d bytes\n",
			*dir, after.Records, before.DiskBytes, after.DiskBytes)
		return nil
	default:
		return fmt.Errorf("store: unknown verb %q (want stats|compact|merge|dump)", verb)
	}
}

// runStoreMerge folds store shards into one canonical store: `bncg store
// merge -out <dir> <shard>...`. Identical duplicate records fold silently;
// a contradictory (class, concept) record fails the merge loudly with a
// non-zero exit — determinism makes contradictions impossible for honest
// shards, so one can only mean corruption.
func runStoreMerge(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("store merge", flag.ContinueOnError)
	out := fs.String("out", "", "destination store directory (created if absent)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	shards := fs.Args()
	if *out == "" {
		return fmt.Errorf("store merge: missing -out")
	}
	if len(shards) == 0 {
		return fmt.Errorf("store merge: no shard directories given")
	}
	dst, err := bncg.OpenStore(*out, bncg.StoreOptions{})
	if err != nil {
		return err
	}
	defer dst.Close()
	var total bncg.StoreIngestStats
	for _, shard := range shards {
		src, err := bncg.OpenStore(shard, bncg.StoreOptions{ReadOnly: true})
		if err != nil {
			return fmt.Errorf("store merge: %w", err)
		}
		stats, ierr := dst.Ingest(src)
		cerr := src.Close()
		if ierr != nil {
			return fmt.Errorf("store merge %s: %w", shard, ierr)
		}
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(stdout, "merged %s: +%d certificates, +%d verdicts, %d duplicates folded\n",
			shard, stats.Certificates, stats.Verdicts, stats.Duplicates)
		total.Certificates += stats.Certificates
		total.Verdicts += stats.Verdicts
		total.Duplicates += stats.Duplicates
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "merge complete: %d shards -> %s (%d certificates, %d verdicts, %d duplicates folded)\n",
		len(shards), *out, total.Certificates, total.Verdicts, total.Duplicates)
	return nil
}

// dumpStore prints every record in a deterministic text form — certs
// first, then verdicts, each sorted by key — so two stores holding the
// same certificate set produce byte-identical dumps: the comparison the
// fleet's merged-equals-single-process guarantee is checked with.
func dumpStore(st *bncg.VerdictStore, stdout io.Writer) error {
	var certs []bncg.StoreCertRecord
	st.RangeCerts(func(r bncg.StoreCertRecord) bool {
		certs = append(certs, r)
		return true
	})
	slices.SortFunc(certs, func(a, b bncg.StoreCertRecord) int {
		if c := strings.Compare(a.Canon, b.Canon); c != 0 {
			return c
		}
		if c := strings.Compare(a.Variant, b.Variant); c != 0 {
			return c
		}
		return int(a.Concept) - int(b.Concept)
	})
	for _, r := range certs {
		fmt.Fprintf(stdout, "cert %x %s%s %s\n", r.Canon, bncg.Concept(r.Concept), dumpVariant(r.Variant), intervalsString(r.Intervals))
	}
	var recs []bncg.StoreRecord
	st.Range(func(r bncg.StoreRecord) bool {
		recs = append(recs, r)
		return true
	})
	slices.SortFunc(recs, func(a, b bncg.StoreRecord) int {
		if c := strings.Compare(a.Canon, b.Canon); c != 0 {
			return c
		}
		if c := strings.Compare(a.Variant, b.Variant); c != 0 {
			return c
		}
		if a.Num != b.Num {
			return int(a.Num - b.Num)
		}
		if a.Den != b.Den {
			return int(a.Den - b.Den)
		}
		return int(a.Concept) - int(b.Concept)
	})
	for _, r := range recs {
		verdict := "unstable"
		if r.Stable {
			verdict = "stable"
		}
		fmt.Fprintf(stdout, "verdict %x %s%s %d/%d %s\n", r.Canon, bncg.Concept(r.Concept), dumpVariant(r.Variant), r.Num, r.Den, verdict)
	}
	return nil
}

// dumpVariant renders a record's variant for `store dump` lines — empty
// for the default variant, so pre-variant stores dump byte-identically.
func dumpVariant(variant string) string {
	if variant == "" {
		return ""
	}
	return " variant=" + variant
}

// intervalsString renders a persisted certificate's α set, e.g.
// "[1,2) [3,inf)"; an empty set renders as "(empty)".
func intervalsString(ivs []bncg.StoreInterval) string {
	if len(ivs) == 0 {
		return "(empty)"
	}
	var b strings.Builder
	for i, iv := range ivs {
		if i > 0 {
			b.WriteByte(' ')
		}
		if iv.LoOpen {
			b.WriteByte('(')
		} else {
			b.WriteByte('[')
		}
		fmt.Fprintf(&b, "%d/%d,", iv.LoNum, iv.LoDen)
		if iv.HiInf {
			b.WriteString("inf)")
			continue
		}
		fmt.Fprintf(&b, "%d/%d", iv.HiNum, iv.HiDen)
		if iv.HiOpen {
			b.WriteByte(')')
		} else {
			b.WriteByte(']')
		}
	}
	return b.String()
}

// runFleet is the coordinator of a distributed sweep: plan the pruned
// class stream into lease ranges, persist the table, then watch the fleet
// — reclaiming expired leases so a dead worker's ranges return to the pool
// — until every range is done. Workers are separate `bncg worker`
// processes sharing the fleet directory; the coordinator never certifies
// anything itself. With -merge-out it finishes by folding every shard
// under <dir>/shards into one canonical store and checking completeness.
func runFleet(ctx context.Context, args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "status" {
		return runFleetStatus(args[1:], stdout)
	}
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	var cf commonFlags
	dir := fs.String("dir", "", "fleet directory: lease table + default shard location")
	n := fs.Int("n", 7, "node count (7 is the fleet-scale frontier)")
	conceptsStr := fs.String("concepts", "all", "comma-separated concepts (default: all nine)")
	cf.addVariant(fs)
	trees := fs.Bool("trees", false, "sweep free trees instead of connected graphs")
	rangeSize := fs.Int("range-size", 32, "classes per lease range")
	watch := fs.Duration("watch", 2*time.Second, "monitor poll interval")
	planOnly := fs.Bool("plan-only", false, "plan and persist the lease table, then exit without monitoring")
	mergeOut := fs.String("merge-out", "", "after completion, merge every shard under <dir>/shards into this store")
	cf.addTrace(fs, "append NDJSON spans for the coordinator (plan, reclaims, merge) to <file>")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("fleet: missing -dir")
	}
	tracer, closeTracer, err := cf.openTracer("fleet")
	if err != nil {
		return err
	}
	defer closeTracer()
	concepts, err := parseConceptList(*conceptsStr)
	if err != nil {
		return err
	}
	variant, err := cf.variant()
	if err != nil {
		return err
	}
	source := bncg.SweepGraphs
	if *trees {
		source = bncg.SweepTrees
	}
	// Fleet sweeps are certificate workloads: each (class, concept) gets
	// one parametric certificate answering every α, so the grid spec pins
	// a single nominal α and any α-grid report is derived after the merge.
	one, err := bncg.NewAlpha(1, 1)
	if err != nil {
		return err
	}
	opts := bncg.SweepOptions{
		N:        *n,
		Alphas:   []bncg.Alpha{one},
		Concepts: concepts,
		Source:   source,
		Variant:  variant,
	}

	table, err := bncg.LoadFleet(*dir)
	switch {
	case err == nil:
		// Resuming an existing fleet: the table is the authority on the
		// grid, but refuse a flag mismatch rather than silently monitoring
		// a different sweep than the one asked for.
		if !sameGrid(table.Grid, bncg.NewSweepCheckpoint(opts, 0, 0)) {
			return fmt.Errorf("fleet: %s holds the lease table of a different grid (n=%d source=%s); use a fresh directory",
				*dir, table.Grid.N, table.Grid.Source)
		}
		p := table.Progress()
		fmt.Fprintf(stdout, "fleet: resuming %s: %d classes in %d ranges (%d done)\n",
			*dir, table.Classes, len(table.Ranges), p.Done)
	case os.IsNotExist(err):
		planSpan := tracer.Start("plan")
		table, err = bncg.PlanFleet(ctx, opts, *rangeSize)
		if err != nil {
			planSpan.End(bncg.TraceAttrs{"error": err.Error()})
			return err
		}
		planSpan.End(bncg.TraceAttrs{"classes": table.Classes, "ranges": len(table.Ranges)})
		if err := bncg.CreateFleet(*dir, table); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fleet: planned n=%d source=%s: %d classes in %d ranges of <=%d\n",
			*n, source, table.Classes, len(table.Ranges), *rangeSize)
	default:
		return err
	}
	if *planOnly {
		return nil
	}

	ticker := time.NewTicker(*watch)
	defer ticker.Stop()
	lastDone := -1
	for {
		reclaimed, err := bncg.ReclaimFleet(*dir)
		if err != nil {
			return err
		}
		if reclaimed > 0 {
			tracer.Event("reclaim", bncg.TraceAttrs{"leases": reclaimed})
			fmt.Fprintf(stdout, "fleet: reclaimed %d expired lease(s)\n", reclaimed)
		}
		t, err := bncg.LoadFleet(*dir)
		if err != nil {
			return err
		}
		p := t.Progress()
		if p.Done != lastDone {
			fmt.Fprintf(stdout, "fleet: %d/%d ranges done (%d leased, %d pending, %d reclaims)\n",
				p.Done, len(t.Ranges), p.Leased, p.Pending, p.Reclaims)
			lastDone = p.Done
		}
		if t.Done() {
			break
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fleet: interrupted with %d/%d ranges done: %w", p.Done, len(t.Ranges), ctx.Err())
		case <-ticker.C:
		}
	}
	fmt.Fprintf(stdout, "fleet: complete: %d classes certified across %d ranges\n", table.Classes, len(table.Ranges))

	if *mergeOut == "" {
		return nil
	}
	matches, err := filepath.Glob(filepath.Join(*dir, bncg.FleetShardsDir, "*"))
	if err != nil {
		return err
	}
	var shards []string
	for _, m := range matches {
		if info, err := os.Stat(m); err == nil && info.IsDir() {
			shards = append(shards, m)
		}
	}
	if len(shards) == 0 {
		return fmt.Errorf("fleet: no shards under %s to merge", filepath.Join(*dir, bncg.FleetShardsDir))
	}
	mergeSpan := tracer.Start("merge")
	if err := runStoreMerge(append([]string{"-out", *mergeOut}, shards...), stdout); err != nil {
		mergeSpan.End(bncg.TraceAttrs{"shards": len(shards), "error": err.Error()})
		return err
	}
	mergeSpan.End(bncg.TraceAttrs{"shards": len(shards)})
	// Completeness check: a done table plus the durability-before-
	// completion worker invariant means the merged store must hold exactly
	// one certificate per (class, concept).
	merged, err := bncg.OpenStore(*mergeOut, bncg.StoreOptions{ReadOnly: true})
	if err != nil {
		return err
	}
	defer merged.Close()
	certs := 0
	merged.RangeCerts(func(bncg.StoreCertRecord) bool {
		certs++
		return true
	})
	want := table.Classes * len(concepts)
	if certs != want {
		return fmt.Errorf("fleet: merged store %s holds %d certificates, want %d (%d classes x %d concepts)",
			*mergeOut, certs, want, table.Classes, len(concepts))
	}
	fmt.Fprintf(stdout, "fleet: merged store complete: %d certificates (%d classes x %d concepts)\n",
		certs, table.Classes, len(concepts))
	return nil
}

// runWorker is one member of a fleet: claim lease ranges from the table in
// -dir, certify them with the shared engine, append certificates to its
// own shard, and exit when the whole fleet's table is done. Run any number
// of these against one fleet directory, from any number of machines
// sharing the filesystem.
func runWorker(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("worker", flag.ContinueOnError)
	var cf commonFlags
	dir := fs.String("dir", "", "fleet directory holding the lease table")
	id := fs.String("id", "", "worker id recorded as lease owner (default: host-pid)")
	cf.addStore(fs, "this worker's shard store (default: <dir>/shards/<id>)")
	cf.addVariant(fs)
	ttl := fs.Duration("ttl", 30*time.Second, "lease duration; heartbeats extend it")
	poll := fs.Duration("poll", 500*time.Millisecond, "back-off between claim attempts when every range is taken")
	cf.addWorkers(fs, "per-range sweep pool size (0 = all CPUs)")
	progress := fs.Bool("progress", false, "log per-range lease activity on stderr")
	cf.addTrace(fs, "append NDJSON spans for this worker's shard to <file> (merge shard traces with `bncg trace`)")
	cf.addSidecar(fs, "worker")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("worker: missing -dir")
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if *cf.storeDir == "" {
		*cf.storeDir = filepath.Join(*dir, bncg.FleetShardsDir, *id)
	}
	if cf.variantSet() {
		// The lease table is the authority on the grid — including its
		// variant. -variant here is an assertion: refuse to join a fleet
		// certifying a different game than the operator expects.
		variant, err := cf.variant()
		if err != nil {
			return err
		}
		if t, err := bncg.LoadFleet(*dir); err == nil && t.Grid.Variant != variant.Key() {
			want := t.Grid.Variant
			if want == "" {
				want = "the default variant"
			}
			return fmt.Errorf("worker: -variant %q does not match the fleet grid (%s)", variant.Key(), want)
		}
	}
	tracer, closeTracer, err := cf.openTracer(*id)
	if err != nil {
		return err
	}
	defer closeTracer()
	st, err := bncg.OpenStore(*cf.storeDir, bncg.StoreOptions{Trace: tracer})
	if err != nil {
		return err
	}
	defer st.Close()
	// The worker's cache is private to RunFleetWorker, which binds its
	// stats onto this registry itself; only the shard is visible here.
	metrics := cf.metrics()
	bindStoreStats(metrics, st)
	closeSidecar, err := cf.startSidecar("worker", metrics)
	if err != nil {
		return err
	}
	defer closeSidecar()
	wopts := bncg.FleetWorkerOptions{
		Dir:          *dir,
		Owner:        *id,
		Store:        st,
		TTL:          *ttl,
		Poll:         *poll,
		SweepWorkers: *cf.workers,
		Trace:        tracer,
		Metrics:      metrics,
	}
	if *progress {
		wopts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	stats, err := bncg.RunFleetWorker(ctx, wopts)
	if err != nil {
		if interrupted(err) {
			return fmt.Errorf("worker %s: interrupted after %d range(s); leases will expire for others: %w",
				*id, stats.Ranges, err)
		}
		return err
	}
	fmt.Fprintf(stdout, "worker %s: fleet done: %d range(s), %d classes, %d certificates fresh, %d cache hits, %d leases lost\n",
		*id, stats.Ranges, stats.Classes, stats.Certified, stats.Hits, stats.LeasesLost)
	return nil
}

// runFleetStatus prints a read-only snapshot of a fleet's lease table. It
// reads the table file directly — no flock, no mutation — so it is safe
// to point at a directory a live coordinator and workers are using.
func runFleetStatus(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fleet status", flag.ContinueOnError)
	dir := fs.String("dir", "", "fleet directory holding the lease table")
	asJSON := fs.Bool("json", false, "emit the snapshot as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("fleet status: missing -dir")
	}
	t, err := bncg.LoadFleet(*dir)
	if err != nil {
		return err
	}
	p := t.Progress()
	if *asJSON {
		out := struct {
			SchemaVersion int               `json:"schema_version"`
			N             int               `json:"n"`
			Source        string            `json:"source"`
			Variant       string            `json:"variant,omitempty"`
			Classes       int               `json:"classes"`
			Pending       int               `json:"pending"`
			Leased        int               `json:"leased"`
			Done          int               `json:"done"`
			Reclaims      int               `json:"reclaims"`
			Ranges        []bncg.FleetRange `json:"ranges"`
		}{bncg.SchemaVersion, t.Grid.N, t.Grid.Source, t.Grid.Variant, t.Classes, p.Pending, p.Leased, p.Done, p.Reclaims, t.Ranges}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(stdout, "fleet %s: n=%d source=%s%s, %d classes in %d ranges\n",
		*dir, t.Grid.N, t.Grid.Source, dumpVariant(t.Grid.Variant), t.Classes, len(t.Ranges))
	fmt.Fprintf(stdout, "progress: %d done, %d leased, %d pending, %d reclaims\n",
		p.Done, p.Leased, p.Pending, p.Reclaims)
	now := time.Now()
	for _, r := range t.Ranges {
		// Pending ranges that were never reclaimed carry no history worth a
		// row; everything else shows who holds (or held) the lease.
		if r.State == "pending" && r.Reclaims == 0 {
			continue
		}
		line := fmt.Sprintf("  [%6d,%6d) %-7s", r.Start, r.End, r.State)
		if r.Owner != "" {
			line += " owner=" + r.Owner
		}
		if r.State == "leased" {
			line += fmt.Sprintf(" epoch=%d deadline=%s", r.Epoch, r.Deadline.Sub(now).Round(time.Millisecond))
		}
		if r.Reclaims > 0 {
			line += fmt.Sprintf(" reclaims=%d", r.Reclaims)
		}
		fmt.Fprintln(stdout, line)
	}
	return nil
}

// runTrace is the analyzer: read one or more NDJSON trace files (a sweep's
// -trace output, or every shard trace of a fleet run) and report where the
// time went. Parse and schema errors surface as a non-zero exit — the
// nightly workflow relies on this to pin the trace schema.
func runTrace(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	topK := fs.Int("top", 10, "slowest classes to report")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("trace: want one or more trace files")
	}
	tr, err := bncg.ReadTraceFiles(fs.Args()...)
	if err != nil {
		return err
	}
	rep := bncg.AnalyzeTrace(tr, *topK)
	rep.SchemaVersion = bncg.SchemaVersion
	rep.Files = fs.NArg()
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Fprint(stdout, rep.Text())
	return nil
}

func runPoA(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("poa", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of agents")
	alphaStr := fs.String("alpha", "", "edge price p or p/q")
	conceptStr := fs.String("concept", "PS", "solution concept")
	graphs := fs.Bool("graphs", false, "search all connected graphs instead of trees")
	asJSON := fs.Bool("json", false, "emit the result as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	c, err := parseConcept(*conceptStr)
	if err != nil {
		return err
	}
	var res bncg.PoAResult
	var searchErr error
	if *graphs {
		res, searchErr = bncg.WorstGraph(ctx, *n, alpha, c)
	} else {
		res, searchErr = bncg.WorstTree(ctx, *n, alpha, c)
	}
	if searchErr != nil && !interrupted(searchErr) {
		return searchErr
	}
	if *asJSON {
		witness := ""
		if res.Witness != nil {
			witness = bncg.EncodeGraph(res.Witness)
		}
		out := struct {
			SchemaVersion int     `json:"schema_version"`
			N             int     `json:"n"`
			Alpha         string  `json:"alpha"`
			Concept       string  `json:"concept"`
			Rho           float64 `json:"rho"`
			Witness       string  `json:"witness,omitempty"`
			Equilibria    int     `json:"equilibria"`
			Candidates    int     `json:"candidates"`
			Partial       bool    `json:"partial"`
		}{bncg.SchemaVersion, *n, alpha.String(), c.String(), res.Rho, witness, res.Equilibria, res.Candidates, searchErr != nil}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		qualifier := ""
		if searchErr != nil {
			qualifier = " (partial)"
		}
		fmt.Fprintf(stdout, "n=%d α=%s %s: worst%s ρ = %.4f over %d equilibria of %d candidates\n",
			*n, alpha, c, qualifier, res.Rho, res.Equilibria, res.Candidates)
		if res.Witness != nil {
			fmt.Fprintf(stdout, "witness: %s\n", res.Witness)
		}
	}
	if searchErr != nil {
		return fmt.Errorf("interrupted: %w", searchErr)
	}
	return nil
}
