// Command bncg is the CLI for the Bilateral Network Creation Game library:
// it generates the paper's graph families, checks equilibrium concepts,
// computes costs and Price-of-Anarchy searches, and runs the
// paper-reproduction experiments.
//
// Usage:
//
//	bncg list
//	bncg experiment <id>|all [-full]
//	bncg gen <family> [params...]
//	bncg check -alpha <p[/q]> [-concept <name>] [-file <graph>]
//	bncg cost -alpha <p[/q]> [-file <graph>]
//	bncg poa -n <nodes> -alpha <p[/q]> -concept <name> [-graphs]
//	bncg sweep [-n <nodes>] [-workers <w>] [-alphas <grid>] [-concepts <list>] [-trees]
//
// Graphs are read in the plain text edge-list format ("n <count>" then one
// "u v" pair per line); with no -file, standard input is read.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	bncg "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bncg:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (list, experiment, gen, check, cost, poa, sweep)")
	}
	switch args[0] {
	case "list":
		return runList(stdout)
	case "experiment":
		return runExperiment(args[1:], stdout)
	case "gen":
		return runGen(args[1:], stdout)
	case "check":
		return runCheck(args[1:], stdin, stdout)
	case "cost":
		return runCost(args[1:], stdin, stdout)
	case "poa":
		return runPoA(args[1:], stdout)
	case "sweep":
		return runSweep(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func runList(stdout io.Writer) error {
	fmt.Fprintln(stdout, "experiments (DESIGN.md §4):")
	for _, id := range bncg.ExperimentIDs() {
		fmt.Fprintln(stdout, " ", id)
	}
	return nil
}

func runExperiment(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	full := fs.Bool("full", false, "run at full scale (slower, extends sweeps)")
	// Accept flags before or after the experiment id.
	var flags, positional []string
	for _, a := range args {
		if strings.HasPrefix(a, "-") {
			flags = append(flags, a)
		} else {
			positional = append(positional, a)
		}
	}
	if err := fs.Parse(flags); err != nil {
		return err
	}
	if len(positional) != 1 {
		return fmt.Errorf("experiment: want exactly one id or 'all'")
	}
	scale := bncg.Quick
	if *full {
		scale = bncg.Full
	}
	ids := positional
	if positional[0] == "all" {
		ids = bncg.ExperimentIDs()
	}
	failed := 0
	for _, id := range ids {
		rep, err := bncg.Experiment(id, scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, rep)
		if !rep.AllPass() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) had failing checks", failed)
	}
	return nil
}

func runGen(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("gen: want a family: star|clique|path|cycle|dary|stretched|treestar")
	}
	atoi := func(i int, name string) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("gen %s: missing %s", args[0], name)
		}
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return 0, fmt.Errorf("gen %s: bad %s %q", args[0], name, args[i])
		}
		return v, nil
	}
	var g *bncg.Graph
	switch args[0] {
	case "star", "clique", "path", "cycle":
		n, err := atoi(1, "node count")
		if err != nil {
			return err
		}
		switch args[0] {
		case "star":
			g = bncg.Star(n)
		case "clique":
			g = bncg.Clique(n)
		case "path":
			g = bncg.Path(n)
		case "cycle":
			g = bncg.Cycle(n)
		}
	case "dary":
		n, err := atoi(1, "node count")
		if err != nil {
			return err
		}
		d, err := atoi(2, "arity")
		if err != nil {
			return err
		}
		g = bncg.AlmostCompleteDAry(n, d)
	case "stretched":
		d, err := atoi(1, "depth")
		if err != nil {
			return err
		}
		k, err := atoi(2, "stretch factor")
		if err != nil {
			return err
		}
		g = bncg.NewStretched(d, k).G
	case "treestar":
		k, err := atoi(1, "stretch factor")
		if err != nil {
			return err
		}
		t, err := atoi(2, "target subtree size")
		if err != nil {
			return err
		}
		eta, err := atoi(3, "target size")
		if err != nil {
			return err
		}
		ts, err := bncg.NewTreeStar(k, float64(t), eta)
		if err != nil {
			return err
		}
		g = ts.G
	default:
		return fmt.Errorf("gen: unknown family %q", args[0])
	}
	fmt.Fprint(stdout, bncg.EncodeGraph(g))
	return nil
}

func parseAlpha(s string) (bncg.Alpha, error) {
	if s == "" {
		return bncg.Alpha{}, fmt.Errorf("missing -alpha")
	}
	num, den := s, "1"
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, den = s[:i], s[i+1:]
	}
	p, err1 := strconv.ParseInt(num, 10, 64)
	q, err2 := strconv.ParseInt(den, 10, 64)
	if err1 != nil || err2 != nil {
		return bncg.Alpha{}, fmt.Errorf("bad alpha %q (want p or p/q)", s)
	}
	return bncg.NewAlpha(p, q)
}

func parseConcept(s string) (bncg.Concept, error) {
	concepts := map[string]bncg.Concept{
		"RE": bncg.RE, "BAE": bncg.BAE, "PS": bncg.PS, "BSwE": bncg.BSwE,
		"BGE": bncg.BGE, "BNE": bncg.BNE, "2-BSE": bncg.TwoBSE,
		"3-BSE": bncg.ThreeBSE, "BSE": bncg.BSE,
	}
	c, ok := concepts[s]
	if !ok {
		return 0, fmt.Errorf("unknown concept %q (want RE, BAE, PS, BSwE, BGE, BNE, 2-BSE, 3-BSE, BSE)", s)
	}
	return c, nil
}

func readGraph(file string, stdin io.Reader) (*bncg.Graph, error) {
	var data []byte
	var err error
	if file == "" {
		data, err = io.ReadAll(stdin)
	} else {
		data, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	return bncg.DecodeGraph(string(data))
}

func runCheck(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	alphaStr := fs.String("alpha", "", "edge price p or p/q")
	conceptStr := fs.String("concept", "", "single concept to check (default: all)")
	file := fs.String("file", "", "graph file (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	g, err := readGraph(*file, stdin)
	if err != nil {
		return err
	}
	gm, err := bncg.NewGame(g.N(), alpha)
	if err != nil {
		return err
	}
	concepts := bncg.Concepts()
	if *conceptStr != "" {
		c, err := parseConcept(*conceptStr)
		if err != nil {
			return err
		}
		concepts = []bncg.Concept{c}
	}
	for _, c := range concepts {
		res := bncg.Check(gm, g, c)
		if res.Stable {
			fmt.Fprintf(stdout, "%-6s stable\n", c)
		} else {
			fmt.Fprintf(stdout, "%-6s UNSTABLE: %v\n", c, res.Witness)
		}
	}
	return nil
}

func runCost(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cost", flag.ContinueOnError)
	alphaStr := fs.String("alpha", "", "edge price p or p/q")
	file := fs.String("file", "", "graph file (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	g, err := readGraph(*file, stdin)
	if err != nil {
		return err
	}
	gm, err := bncg.NewGame(g.N(), alpha)
	if err != nil {
		return err
	}
	for u := 0; u < g.N(); u++ {
		c := gm.AgentCost(g, u)
		fmt.Fprintf(stdout, "agent %d: %v (= %.3f)\n", u, c, c.Value(alpha))
	}
	total := gm.SocialCost(g)
	fmt.Fprintf(stdout, "social cost: %.3f  OPT: %.3f  rho: %.4f\n",
		total.Value(alpha), gm.OptCost().Value(alpha), gm.Rho(g))
	return nil
}

func runSweep(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	n := fs.Int("n", 6, "node count (6 is the Full-scale lattice sweep)")
	workers := fs.Int("workers", 0, "worker pool size (0 = all CPUs)")
	alphasStr := fs.String("alphas", "1/2,1,3/2,2,3,5", "comma-separated α grid")
	conceptsStr := fs.String("concepts", "all", "comma-separated concepts (default: all nine)")
	trees := fs.Bool("trees", false, "sweep free trees instead of connected graphs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var alphas []bncg.Alpha
	for _, s := range strings.Split(*alphasStr, ",") {
		a, err := parseAlpha(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		alphas = append(alphas, a)
	}
	concepts := bncg.Concepts()
	if *conceptsStr != "all" {
		concepts = concepts[:0]
		for _, s := range strings.Split(*conceptsStr, ",") {
			c, err := parseConcept(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			concepts = append(concepts, c)
		}
	}
	source := bncg.SweepGraphs
	if *trees {
		source = bncg.SweepTrees
	}
	res, err := bncg.RunSweep(bncg.SweepOptions{
		N:        *n,
		Alphas:   alphas,
		Concepts: concepts,
		Workers:  *workers,
		Source:   source,
		Cache:    bncg.SharedSweepCache(),
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, res.Report())
	fmt.Fprintf(stdout, "workers=%d cache: %d hits, %d misses\n", res.Workers, res.Hits, res.Misses)
	return nil
}

func runPoA(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("poa", flag.ContinueOnError)
	n := fs.Int("n", 8, "number of agents")
	alphaStr := fs.String("alpha", "", "edge price p or p/q")
	conceptStr := fs.String("concept", "PS", "solution concept")
	graphs := fs.Bool("graphs", false, "search all connected graphs instead of trees")
	if err := fs.Parse(args); err != nil {
		return err
	}
	alpha, err := parseAlpha(*alphaStr)
	if err != nil {
		return err
	}
	c, err := parseConcept(*conceptStr)
	if err != nil {
		return err
	}
	var res bncg.PoAResult
	if *graphs {
		res, err = bncg.WorstGraph(*n, alpha, c)
	} else {
		res, err = bncg.WorstTree(*n, alpha, c)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "n=%d α=%s %s: worst ρ = %.4f over %d equilibria of %d candidates\n",
		*n, alpha, c, res.Rho, res.Equilibria, res.Candidates)
	if res.Witness != nil {
		fmt.Fprintf(stdout, "witness: %s\n", res.Witness)
	}
	return nil
}
