package bncg_test

import (
	"context"
	"testing"

	bncg "repro"
)

// The facade exercises the full pipeline the README advertises.
func TestQuickstartFlow(t *testing.T) {
	gm, err := bncg.NewGame(6, bncg.AlphaInt(3))
	if err != nil {
		t.Fatal(err)
	}
	star := bncg.Star(6)
	for _, c := range []bncg.Concept{bncg.RE, bncg.PS, bncg.BGE, bncg.BNE, bncg.BSE} {
		if res := bncg.Check(gm, star, c); !res.Stable {
			t.Fatalf("star unstable for %s: %v", c, res.Witness)
		}
	}
	if rho := gm.Rho(star); rho != 1 {
		t.Fatalf("ρ(star) = %v, want 1", rho)
	}
}

func TestFacadeGraphRoundTrip(t *testing.T) {
	g, err := bncg.FromEdges(3, []bncg.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	back, err := bncg.DecodeGraph(bncg.EncodeGraph(g))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(back) {
		t.Fatal("facade encode/decode mismatch")
	}
}

func TestFacadePoA(t *testing.T) {
	res, err := bncg.WorstTree(context.Background(), 7, bncg.AlphaInt(4), bncg.PS)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho < 1 || res.Witness == nil {
		t.Fatalf("WorstTree: %+v", res)
	}
	rho, err := bncg.TreeRho(mustGame(t, 7, bncg.AlphaInt(4)), res.Witness)
	if err != nil {
		t.Fatal(err)
	}
	if rho != res.Rho {
		t.Fatalf("TreeRho %v != search ρ %v", rho, res.Rho)
	}
}

func TestFacadeAlphaConstructors(t *testing.T) {
	if bncg.Alpha2(9, 2).String() != "9/2" {
		t.Fatal("Alpha2 wrong")
	}
	if _, err := bncg.NewAlpha(-1, 2); err == nil {
		t.Fatal("negative alpha accepted")
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	ids := bncg.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	rep, err := bncg.Experiment(context.Background(), "F3", bncg.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AllPass() {
		t.Fatalf("F3 failed: %v", rep.FailedChecks())
	}
}

func mustGame(t *testing.T, n int, a bncg.Alpha) bncg.Game {
	t.Helper()
	gm, err := bncg.NewGame(n, a)
	if err != nil {
		t.Fatal(err)
	}
	return gm
}
